package core

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Snapshot is a full diagnostic view of the engine's state at one
// iteration, for observability tooling (lrgp-sim -verbose) and debugging.
type Snapshot struct {
	// Iteration is the number of completed iterations.
	Iteration int
	// Utility is the current objective value.
	Utility float64
	// Allocation holds the rates and populations.
	Allocation model.Allocation
	// NodePrices, LinkPrices and Gammas mirror the per-resource state.
	NodePrices []float64
	LinkPrices []float64
	Gammas     []float64
	// NodeUsage and NodeCapacity give each node's load; LinkUsage and
	// LinkCapacity each link's.
	NodeUsage    []float64
	NodeCapacity []float64
	LinkUsage    []float64
	LinkCapacity []float64
	// FlowActive marks flows participating in iterations.
	FlowActive []bool
	// Workers is the engine's normalized worker count and Sharded reports
	// whether Step actually fans out over the pool (large-enough problem
	// and Workers > 1); results are identical either way, so these matter
	// only for performance diagnostics. Fused reports that the crossing-
	// writes analysis proved the problem componentized and Step runs the
	// single-barrier fused schedule (DESIGN.md §5).
	Workers int
	Sharded bool
	Fused   bool
}

// String renders a one-line summary of the snapshot: iteration, utility,
// peak node and link load, and the execution mode (worker count, whether
// Step is sharded over the pool).
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iter=%d utility=%.1f", s.Iteration, s.Utility)
	if load, ok := peakLoad(s.NodeUsage, s.NodeCapacity); ok {
		fmt.Fprintf(&b, " peak-node-load=%.1f%%", 100*load)
	}
	if load, ok := peakLoad(s.LinkUsage, s.LinkCapacity); ok {
		fmt.Fprintf(&b, " peak-link-load=%.1f%%", 100*load)
	}
	mode := "serial"
	switch {
	case s.Fused:
		mode = "fused"
	case s.Sharded:
		mode = "sharded"
	}
	fmt.Fprintf(&b, " workers=%d (%s)", s.Workers, mode)
	return b.String()
}

// peakLoad returns the largest usage/capacity ratio, skipping resources
// with non-positive capacity; ok is false when no resource qualifies.
func peakLoad(usage, capacity []float64) (load float64, ok bool) {
	for i := range usage {
		if i >= len(capacity) || capacity[i] <= 0 {
			continue
		}
		if r := usage[i] / capacity[i]; !ok || r > load {
			load, ok = r, true
		}
	}
	return load, ok
}

// Snapshot captures the engine's complete current state. All slices are
// copies.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Iteration:    e.iteration,
		Utility:      e.Utility(),
		Allocation:   e.Allocation(),
		NodePrices:   e.NodePrices(),
		LinkPrices:   e.LinkPrices(),
		Gammas:       e.Gammas(),
		NodeUsage:    make([]float64, len(e.p.Nodes)),
		NodeCapacity: make([]float64, len(e.p.Nodes)),
		LinkUsage:    make([]float64, len(e.p.Links)),
		LinkCapacity: make([]float64, len(e.p.Links)),
		FlowActive:   make([]bool, len(e.p.Flows)),
		Workers:      e.cfg.Workers,
		Sharded:      e.pool != nil,
		Fused:        e.fused,
	}
	copy(s.FlowActive, e.active)

	a := model.Allocation{Rates: e.rates, Consumers: e.consumers}
	for b := range e.p.Nodes {
		s.NodeUsage[b] = model.NodeUsage(e.p, e.ix, a, model.NodeID(b))
		s.NodeCapacity[b] = e.p.Nodes[b].Capacity
	}
	for l := range e.p.Links {
		s.LinkUsage[l] = model.LinkUsage(e.p, e.ix, a, model.LinkID(l))
		s.LinkCapacity[l] = e.p.Links[l].Capacity
	}
	return s
}
