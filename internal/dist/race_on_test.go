//go:build race

package dist

// raceEnabled: see race_off_test.go.
const raceEnabled = true
