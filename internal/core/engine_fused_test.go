package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Fused-schedule equivalence: when the crossing-writes analysis proves a
// problem componentized, Step runs all three stages under one barrier —
// and must still be bit-identical to the serial engine, mutations and all.
// The Random workloads of engine_parallel_test.go are one connected
// component (classes attach anywhere), so they pin the unfused fallback;
// the Scaled workloads here replicate the base problem into independent
// copies, which is exactly the structure the fused path exists for.

// fusedTestProblem builds a componentized workload: FlowCopies independent
// replicas of the base problem, each with its own node sets, plus one
// in-component bottleneck link per flow.
func fusedTestProblem(flowCopies, nodeSetCopies int, withLinks bool) *model.Problem {
	p := workload.Scaled(workload.Config{
		FlowCopies:    flowCopies,
		NodeSetCopies: nodeSetCopies,
	})
	if withLinks {
		p = workload.WithLinkBottlenecks(p, 0.4)
	}
	return p
}

func TestFusedStepBitIdentical(t *testing.T) {
	const iters = 120
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 4; trial++ {
		p := fusedTestProblem(8, 2, trial%2 == 1)
		cfg := Config{Adaptive: trial%2 == 0}
		if !cfg.Adaptive {
			cfg.Gamma1 = 0.01 + rng.Float64()*0.2
			cfg.Gamma2 = cfg.Gamma1
		}
		serialCfg := cfg
		serialCfg.Workers = 1

		for _, workers := range []int{2, 4, 8} {
			parCfg := cfg
			parCfg.Workers = workers
			par, err := NewEngine(p.Clone(), parCfg)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !par.fused {
				t.Fatalf("trial %d workers %d: expected fused engine (%d components)",
					trial, workers, par.plan.components)
			}
			ser, err := NewEngine(p.Clone(), serialCfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			mutate := func(e *Engine, it int) {
				switch it {
				case 40:
					e.SetFlowActive(3, false)
				case 60:
					if err := e.SetClassDemand(5, 9); err != nil {
						t.Fatal(err)
					}
				case 80:
					e.SetFlowActive(3, true)
					if err := e.SetNodeCapacity(2, 2*workload.NodeCapacity); err != nil {
						t.Fatal(err)
					}
				}
			}
			for it := 0; it < iters; it++ {
				mutate(ser, it)
				mutate(par, it)
				rs, rp := ser.Step(), par.Step()
				if rs != rp {
					t.Fatalf("trial %d workers %d iter %d: StepResult %+v, serial %+v",
						trial, workers, it, rp, rs)
				}
				if it%10 == 0 || it == iters-1 {
					assertStateEqual(t, it, workers, ser, par)
				}
			}
			assertStateEqual(t, iters, workers, ser, par)
			if got, want := ser.Utility(), par.Utility(); got != want {
				t.Fatalf("trial %d workers %d: Utility() %v, serial %v", trial, workers, want, got)
			}
			par.Close()
			ser.Close()
		}
	}
}

// TestFusedResetKeepsBitIdentity: Reset restarts the epoch clock; stale
// touch-dedup or cache epochs from the previous life must not leak into
// the new run at matching iteration numbers.
func TestFusedResetKeepsBitIdentity(t *testing.T) {
	p := fusedTestProblem(8, 2, true)
	ser, err := NewEngine(p.Clone(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(p.Clone(), Config{Adaptive: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ser.Close()
	defer par.Close()
	if !par.fused {
		t.Fatal("expected fused engine")
	}
	for it := 0; it < 50; it++ {
		ser.Step()
		par.Step()
	}
	q := p.Clone()
	for b := range q.Nodes {
		q.Nodes[b].Capacity *= 0.9
	}
	if err := ser.Reset(q.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := par.Reset(q.Clone()); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 60; it++ {
		rs, rp := ser.Step(), par.Step()
		if rs != rp {
			t.Fatalf("post-Reset iter %d: StepResult %+v, serial %+v", it, rp, rs)
		}
	}
	assertStateEqual(t, 60, 4, ser, par)
}

// TestStagePlanFallsBackOnEntangledTopology: a single-component problem
// must not fuse — every shard would need every other shard's writes.
func TestStagePlanFallsBackOnEntangledTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := parallelTestProblem(rng, true)
	e, err := NewEngine(p, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.pool == nil {
		t.Fatal("expected sharded engine")
	}
	if e.fused {
		t.Fatal("random single-component workload unexpectedly fused")
	}
	if e.plan.components >= 4 {
		t.Fatalf("expected < 4 components, got %d", e.plan.components)
	}
	if s := e.Snapshot(); s.Fused {
		t.Error("snapshot reports Fused for unfused engine")
	}
}

// TestStagePlanPartition: the plan must place every flow, node and link in
// exactly one shard, in ascending order, and be deterministic across
// rebuilds.
func TestStagePlanPartition(t *testing.T) {
	p := fusedTestProblem(16, 1, true)
	ix := model.NewIndex(p)
	plan := newStagePlan(p, ix, 4)
	if !plan.fused {
		t.Fatalf("expected fused plan, components=%d", plan.components)
	}
	if plan.components != 16 {
		t.Errorf("components = %d, want 16", plan.components)
	}
	check := func(name string, lists [][]int32, n int) {
		seen := make([]bool, n)
		for s, ids := range lists {
			for k, v := range ids {
				if k > 0 && ids[k-1] >= v {
					t.Fatalf("%s shard %d not ascending at %d", name, s, k)
				}
				if seen[v] {
					t.Fatalf("%s %d assigned twice", name, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("%s %d unassigned", name, v)
			}
		}
	}
	check("flow", plan.flows, len(p.Flows))
	check("node", plan.nodes, len(p.Nodes))
	check("link", plan.links, len(p.Links))

	again := newStagePlan(p, model.NewIndex(p), 4)
	if !reflect.DeepEqual(plan, again) {
		t.Error("plan not deterministic across rebuilds")
	}
}

// TestStepFusedNoAllocs: the fused dispatch reuses the pool, the plan
// lists and the touch buffers, so steady-state Step stays at 0 allocs/op.
func TestStepFusedNoAllocs(t *testing.T) {
	e, err := NewEngine(fusedTestProblem(8, 2, true), Config{Workers: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.fused {
		t.Fatal("expected fused engine")
	}
	e.Step()
	if allocs := testing.AllocsPerRun(50, func() { e.Step() }); allocs > 0 {
		t.Errorf("%v allocs per fused Step, want 0", allocs)
	}
}
