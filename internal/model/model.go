// Package model defines the resource-allocation problem an event-driven
// distributed infrastructure must solve, following Section 2 of the LRGP
// paper (Lumezanu, Bhola, Astley, ICDCS 2006).
//
// A Problem consists of flows, consumer classes, nodes and links, together
// with the three cost coefficients of the paper's resource model:
//
//   - Link cost L_{l,i}: resource used on link l per unit rate of flow i
//     (Link.FlowCost).
//   - Flow-node cost F_{b,i}: resource used at node b per unit rate of flow
//     i, independent of consumers (Node.FlowCost).
//   - Consumer-node cost G_{b,j}: resource used at the attachment node of
//     class j, per admitted consumer, per unit rate (Class.CostPerConsumer).
//
// An Allocation assigns a rate to every flow and an admitted-consumer count
// to every class; the model package evaluates total utility, per-resource
// usage and feasibility of allocations, and (de)serializes problems.
package model

import "repro/internal/utility"

// Typed identifiers. IDs double as indices: a valid Problem numbers its
// flows, classes, nodes and links 0..len-1 (enforced by Validate).
type (
	// FlowID identifies a message flow.
	FlowID int
	// ClassID identifies a consumer class.
	ClassID int
	// NodeID identifies an overlay node.
	NodeID int
	// LinkID identifies a unidirectional overlay link.
	LinkID int
)

// Flow is a stream of producer messages injected at a single source node.
// The optimizer picks its source rate within [RateMin, RateMax].
type Flow struct {
	// ID is the flow's index in Problem.Flows.
	ID FlowID `json:"id"`
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Source is the node where all of the flow's producers attach and
	// where the rate-allocation algorithm for this flow runs.
	Source NodeID `json:"source"`
	// RateMin and RateMax bound the source rate (constraint 3 in the
	// paper). RateMin must be > 0 so power-law utilities stay
	// differentiable.
	RateMin float64 `json:"rateMin"`
	RateMax float64 `json:"rateMax"`
}

// Class is a set of identical consumers of one flow attached at one node.
// (A class spanning several nodes is modeled as several classes with the
// same utility, as the paper notes.)
type Class struct {
	// ID is the class's index in Problem.Classes.
	ID ClassID `json:"id"`
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Flow is the flow this class consumes (flowMap in the paper).
	Flow FlowID `json:"flow"`
	// Node is the attachment node (attachMap in the paper).
	Node NodeID `json:"node"`
	// MaxConsumers is n_j^max: how many consumers want service.
	MaxConsumers int `json:"maxConsumers"`
	// CostPerConsumer is G_{b,j}: node resource consumed per admitted
	// consumer per unit flow rate.
	CostPerConsumer float64 `json:"costPerConsumer"`
	// Utility is U_j, the per-consumer utility of the flow rate.
	Utility utility.Function `json:"-"`
}

// Node is an overlay node with a finite resource capacity (CPU).
type Node struct {
	// ID is the node's index in Problem.Nodes.
	ID NodeID `json:"id"`
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Capacity is c_b.
	Capacity float64 `json:"capacity"`
	// FlowCost maps each flow that reaches this node to F_{b,i}, the
	// per-unit-rate processing cost that is independent of consumers.
	// Flows absent from the map do not reach the node.
	FlowCost map[FlowID]float64 `json:"flowCost,omitempty"`
}

// Link is a unidirectional overlay link with a finite capacity (network
// bandwidth on the path between two nodes).
type Link struct {
	// ID is the link's index in Problem.Links.
	ID LinkID `json:"id"`
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// From and To are the endpoint nodes. The To endpoint runs the link's
	// price computation in the distributed runtime.
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
	// Capacity is c_l.
	Capacity float64 `json:"capacity"`
	// FlowCost maps each flow that traverses this link to L_{l,i}. Flows
	// absent from the map do not traverse the link.
	FlowCost map[FlowID]float64 `json:"flowCost,omitempty"`
}

// Problem is a complete instance of the optimization problem.
type Problem struct {
	// Name labels the workload (e.g. "base-6f-3n").
	Name string `json:"name,omitempty"`
	// Flows, Classes, Nodes and Links are indexed by their IDs.
	Flows   []Flow  `json:"flows"`
	Classes []Class `json:"classes"`
	Nodes   []Node  `json:"nodes"`
	Links   []Link  `json:"links,omitempty"`
}

// Allocation is a candidate solution: a rate per flow and an admitted
// consumer count per class, indexed by FlowID and ClassID respectively.
type Allocation struct {
	Rates     []float64 `json:"rates"`
	Consumers []int     `json:"consumers"`
}

// NewAllocation returns an allocation with every rate at its flow's RateMin
// and every consumer count at zero — the state LRGP starts from.
func NewAllocation(p *Problem) Allocation {
	a := Allocation{
		Rates:     make([]float64, len(p.Flows)),
		Consumers: make([]int, len(p.Classes)),
	}
	for i, f := range p.Flows {
		a.Rates[i] = f.RateMin
	}
	return a
}

// Clone returns a deep copy of the allocation.
func (a Allocation) Clone() Allocation {
	out := Allocation{
		Rates:     make([]float64, len(a.Rates)),
		Consumers: make([]int, len(a.Consumers)),
	}
	copy(out.Rates, a.Rates)
	copy(out.Consumers, a.Consumers)
	return out
}

// Clone returns a deep copy of the problem. Utility functions are shared
// (they are immutable values).
func (p *Problem) Clone() *Problem {
	out := &Problem{
		Name:    p.Name,
		Flows:   make([]Flow, len(p.Flows)),
		Classes: make([]Class, len(p.Classes)),
		Nodes:   make([]Node, len(p.Nodes)),
		Links:   make([]Link, len(p.Links)),
	}
	copy(out.Flows, p.Flows)
	copy(out.Classes, p.Classes)
	for i, n := range p.Nodes {
		cp := n
		cp.FlowCost = cloneCost(n.FlowCost)
		out.Nodes[i] = cp
	}
	for i, l := range p.Links {
		cp := l
		cp.FlowCost = cloneCost(l.FlowCost)
		out.Links[i] = cp
	}
	return out
}

func cloneCost(m map[FlowID]float64) map[FlowID]float64 {
	if m == nil {
		return nil
	}
	out := make(map[FlowID]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
