package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// OverheadRow records the communication cost of distributed LRGP on one
// workload (X5). The paper notes an iteration's wall-clock cost is about
// one overlay round-trip; this experiment quantifies the message and byte
// volume that buys.
type OverheadRow struct {
	Workload string
	Flows    int
	Nodes    int
	Rounds   int
	// MessagesPerRound and BytesPerRound average over the run (rate
	// announcements + node reports + collector copies).
	MessagesPerRound float64
	BytesPerRound    float64
	// Utility sanity-checks that the run actually optimized.
	Utility float64
}

// OverheadExperiment (X5) runs the synchronous distributed cluster over a
// metered in-memory transport for each Table 2 workload and reports the
// per-round message volume, which grows with flows x nodes while the
// iteration count stays flat (Table 2's finding).
func OverheadExperiment(opts Options, rounds int) ([]OverheadRow, error) {
	o := opts.normalized()
	if rounds <= 0 {
		rounds = o.Iterations / 5
		if rounds < 10 {
			rounds = 10
		}
	}

	var out []OverheadRow
	for _, p := range workload.Table2Workloads() {
		net := transport.NewMemory()
		cl, err := dist.New(p, dist.Config{Core: core.Config{Adaptive: true}}, net)
		if err != nil {
			net.Close()
			return nil, err
		}
		stats, err := cl.Run(rounds, 2*time.Minute)
		if err != nil {
			cl.Close()
			net.Close()
			return nil, err
		}
		m := net.NetStats()
		if err := cl.Close(); err != nil {
			net.Close()
			return nil, err
		}
		net.Close()

		out = append(out, OverheadRow{
			Workload:         p.Name,
			Flows:            len(p.Flows),
			Nodes:            len(p.Nodes),
			Rounds:           rounds,
			MessagesPerRound: float64(m.Delivered) / float64(rounds),
			BytesPerRound:    float64(m.Bytes) / float64(rounds),
			Utility:          stats[len(stats)-1].Utility,
		})
	}
	return out, nil
}

// RuntimeRow records one dist-runtime configuration of the X5 extension:
// the same workload optimized under a wire format / batching / staleness
// combination, with its communication cost and convergence speed.
type RuntimeRow struct {
	Config string // human label, e.g. "binary+batch K=2"
	// Wire, Batch and Staleness echo the dist.Config knobs.
	Wire      string
	Batch     bool
	Staleness int
	// FramesPerRound counts transport frames (after batching), while
	// BytesPerRound counts payload bytes on the wire.
	FramesPerRound float64
	BytesPerRound  float64
	// RoundsToConverge is the first finalized round whose utility is
	// within 1% of the synchronous engine's converged utility (0 when the
	// run never entered the band).
	RoundsToConverge int
	Utility          float64
}

// DistRuntimeExperiment (X5 extension) fixes one mid-size workload (102
// flows x 102 nodes) and sweeps the distributed runtime's throughput
// knobs: JSON vs binary wire, per-host batching, and bounded staleness K.
// It reports frames/round and bytes/round (the costs the binary codec and
// batching attack) and rounds-to-converge (the cost staleness pays, or
// does not, for overlapping rounds).
func DistRuntimeExperiment(opts Options, rounds int) ([]RuntimeRow, error) {
	o := opts.normalized()
	if rounds <= 0 {
		rounds = o.Iterations / 2
		if rounds < 60 {
			rounds = 60
		}
	}
	p := workload.Scaled(workload.Config{FlowCopies: 17, NodeSetCopies: 2})

	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		return nil, err
	}
	want := ref.Solve(2 * rounds).Utility

	configs := []struct {
		label string
		cfg   dist.Config
	}{
		{"json", dist.Config{}},
		{"binary", dist.Config{Wire: transport.WireBinary}},
		{"binary+batch", dist.Config{Wire: transport.WireBinary, Batch: true, Hosts: 12}},
		{"binary+batch K=1", dist.Config{Wire: transport.WireBinary, Batch: true, Hosts: 12, Staleness: 1}},
		{"binary+batch K=2", dist.Config{Wire: transport.WireBinary, Batch: true, Hosts: 12, Staleness: 2}},
		{"binary+batch K=4", dist.Config{Wire: transport.WireBinary, Batch: true, Hosts: 12, Staleness: 4}},
	}

	var out []RuntimeRow
	for _, c := range configs {
		cfg := c.cfg
		cfg.Core = core.Config{Adaptive: true}
		net := transport.NewMemory()
		cl, err := dist.New(p, cfg, net)
		if err != nil {
			net.Close()
			return nil, err
		}
		stats, err := cl.Run(rounds, 2*time.Minute)
		if err != nil {
			cl.Close()
			net.Close()
			return nil, err
		}
		m := net.NetStats()
		if err := cl.Close(); err != nil {
			net.Close()
			return nil, err
		}
		net.Close()

		converged := 0
		for _, s := range stats {
			if rel := (s.Utility - want) / want; rel > -0.01 && rel < 0.01 {
				converged = s.Round
				break
			}
		}
		out = append(out, RuntimeRow{
			Config:           c.label,
			Wire:             cfg.Wire.String(),
			Batch:            cfg.Batch,
			Staleness:        cfg.Staleness,
			FramesPerRound:   float64(m.Delivered) / float64(rounds),
			BytesPerRound:    float64(m.Bytes) / float64(rounds),
			RoundsToConverge: converged,
			Utility:          stats[len(stats)-1].Utility,
		})
	}
	return out, nil
}

// RenderDistRuntime renders the X5 extension rows.
func RenderDistRuntime(rows []RuntimeRow) *trace.Table {
	t := trace.NewTable("X5b: dist runtime — wire format, batching, staleness (102f x 102n)",
		"Config", "Frames/round", "Bytes/round", "Rounds to 1%", "Utility")
	for _, r := range rows {
		conv := "-"
		if r.RoundsToConverge > 0 {
			conv = fmt.Sprint(r.RoundsToConverge)
		}
		t.Add(r.Config,
			fmt.Sprintf("%.1f", r.FramesPerRound),
			fmt.Sprintf("%.0f", r.BytesPerRound),
			conv,
			fmt.Sprintf("%.0f", r.Utility))
	}
	return t
}

// RenderOverhead renders X5 rows.
func RenderOverhead(rows []OverheadRow) *trace.Table {
	t := trace.NewTable("X5: communication overhead of distributed LRGP",
		"Workload", "Flows", "Nodes", "Msgs/round", "Bytes/round", "Utility")
	for _, r := range rows {
		t.Add(r.Workload,
			fmt.Sprint(r.Flows), fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.1f", r.MessagesPerRound),
			fmt.Sprintf("%.0f", r.BytesPerRound),
			fmt.Sprintf("%.0f", r.Utility))
	}
	return t
}
