package experiments

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// TestTracedRunRoundTrip is the trace acceptance check: the JSONL trace
// must decode back, and replaying its utility series through a fresh
// convergence detector must reproduce the run's ConvergedAt.
func TestTracedRunRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := telemetry.NewTraceWriter(&buf)
	res, err := TracedRun(Options{Iterations: 250, Workers: 1}, tw)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("base workload did not converge; trace replay check needs a converged run")
	}

	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Iterations {
		t.Fatalf("decoded %d records, ran %d iterations", len(recs), res.Iterations)
	}
	for i, r := range recs {
		if r.Iteration != i+1 {
			t.Fatalf("record %d has iter=%d", i, r.Iteration)
		}
		if r.Utility != res.Trace[i] {
			t.Fatalf("record %d utility %g != trace %g", i, r.Utility, res.Trace[i])
		}
		if len(r.Rates) == 0 || len(r.Consumers) == 0 || len(r.NodePrices) == 0 {
			t.Fatalf("record %d missing allocation/price vectors: %+v", i, r)
		}
		if r.StageNanos[0]+r.StageNanos[1]+r.StageNanos[2] < 0 {
			t.Fatalf("record %d negative stage time %v", i, r.StageNanos)
		}
	}
	// The first iteration admits the whole initial population, so churn
	// must be visible somewhere in the trace.
	if recs[0].AdmissionDelta == 0 {
		t.Error("first record has zero admission delta")
	}
	if !recs[len(recs)-1].Converged {
		t.Error("final record not marked converged")
	}

	// Replay: the recorded series drives a fresh detector to the same
	// convergence iteration.
	det := metrics.NewConvergenceDetector(0, 0)
	replayedAt := -1
	for _, u := range telemetry.UtilitySeries(recs) {
		if det.Observe(u) && replayedAt < 0 {
			replayedAt = det.ConvergedAt()
		}
	}
	if replayedAt != res.ConvergedAt {
		t.Errorf("replayed ConvergedAt = %d, run reported %d", replayedAt, res.ConvergedAt)
	}
}
