// Command lrgp-calibrate runs the resource-model calibration rig: it
// stands up a dedicated broker, sweeps admitted population sizes while
// publishing probe messages, regresses per-message work against the
// population size, and prints the recovered F/G coefficients — the same
// methodology that produced the paper's Gryphon-derived constants
// (F = 3, G = 19).
//
// Usage:
//
//	lrgp-calibrate [-points 25,50,100,200,400] [-msgs 200] [-unit-cost 1.0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/calibrate"
	"repro/internal/model"
	"repro/internal/utility"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrgp-calibrate", flag.ContinueOnError)
	var (
		pointsFlag = fs.String("points", "25,50,100,200,400", "comma-separated admitted population sizes to sweep")
		msgs       = fs.Int("msgs", 200, "probe messages per sweep point")
		unitCost   = fs.Float64("unit-cost", 1.0, "resource units per abstract work unit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	points, err := parsePoints(*pointsFlag)
	if err != nil {
		return err
	}
	maxPop := 0
	for _, n := range points {
		if n > maxPop {
			maxPop = n
		}
	}

	// A dedicated measurement rig: one flow, one class, enough attached
	// consumers to cover the sweep.
	rig := &model.Problem{
		Name: "calibration-rig",
		Flows: []model.Flow{
			{ID: 0, Name: "probe", Source: 0, RateMin: 1, RateMax: 1e6},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "rig", Capacity: 1e12, FlowCost: map[model.FlowID]float64{0: 1}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "subjects", Flow: 0, Node: 0, MaxConsumers: maxPop,
				CostPerConsumer: 1, Utility: utility.NewLog(1)},
		},
	}
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b, err := broker.New(rig, broker.WithClock(func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	}))
	if err != nil {
		return err
	}
	for i := 0; i < maxPop; i++ {
		if _, err := b.AttachConsumer(0, nil, nil); err != nil {
			return err
		}
	}

	samples, err := calibrate.MeasureBroker(b, 0, 0, 1000, points, *msgs)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "consumers  work/message")
	for _, s := range samples {
		fmt.Fprintf(out, "%9d  %12.2f\n", s.Consumers, s.WorkPerMessage)
	}

	fit, err := calibrate.FitAffine(samples)
	if err != nil {
		return err
	}
	fCost, gCost, err := calibrate.ProblemCoefficients(fit, *unitCost)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfit: work/message = %.4f + %.4f * consumers (R^2 = %.6f)\n", fit.F, fit.G, fit.R2)
	fmt.Fprintf(out, "model coefficients at unit cost %g:\n", *unitCost)
	fmt.Fprintf(out, "  F (flow-node cost per unit rate)      = %.4f\n", fCost)
	fmt.Fprintf(out, "  G (per-consumer cost per unit rate)   = %.4f\n", gCost)
	fmt.Fprintf(out, "(the paper's Gryphon measurements gave F = 3, G = 19)\n")
	return nil
}

func parsePoints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad population %q", part)
		}
		out = append(out, v)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two sweep points, got %q", s)
	}
	return out, nil
}
