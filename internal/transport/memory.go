package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// memoryBuffer is the per-endpoint inbound queue size. Deliveries beyond a
// full buffer block the sender briefly rather than dropping, keeping the
// in-memory transport lossless unless faults are injected.
const memoryBuffer = 1024

// Memory is an in-process Network: endpoints exchange messages through
// buffered channels. It supports deterministic fault injection for tests:
// a seeded drop probability and named partitions.
type Memory struct {
	mu        sync.Mutex
	endpoints map[string]*memoryEndpoint
	closed    bool

	dropRate float64
	rng      *rand.Rand
	// dropExempt names sender endpoints whose messages bypass drop
	// injection (partitions still apply), so tests can inject data-plane
	// loss without severing the control plane.
	dropExempt map[string]bool
	// delay postpones every delivery by a fixed latency. Drop and
	// partition decisions are made at send time; the enqueue happens when
	// the timer fires.
	delay time.Duration
	// partition maps endpoint name -> partition id; endpoints in
	// different partitions cannot exchange messages. Empty map means no
	// partitions.
	partition map[string]int
	// oneWay blocks individual directed sender->receiver pairs, for
	// asymmetric-partition experiments where traffic still flows the
	// other way.
	oneWay map[[2]string]bool
	stats  Stats
}

var (
	_ Network = (*Memory)(nil)
	_ Meter   = (*Memory)(nil)
)

// NewMemory returns an empty in-memory network with no fault injection.
func NewMemory() *Memory {
	return &Memory{
		endpoints: make(map[string]*memoryEndpoint),
		partition: make(map[string]int),
	}
}

// SetDropRate makes every subsequent delivery fail with the given
// probability, using a deterministic seeded generator. rate <= 0 disables
// dropping.
func (m *Memory) SetDropRate(rate float64, seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropRate = rate
	m.rng = rand.New(rand.NewSource(seed))
}

// SetDropExempt marks the named sender endpoints as exempt from drop
// injection: their messages always survive SetDropRate (partitions still
// apply). Use it to keep control-plane endpoints reachable while the data
// plane runs lossy.
func (m *Memory) SetDropExempt(fromNames ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dropExempt == nil {
		m.dropExempt = make(map[string]bool, len(fromNames))
	}
	for _, n := range fromNames {
		m.dropExempt[n] = true
	}
}

// SetDelay postpones every subsequent delivery by d. Delayed messages
// count toward Delivered (and Bytes) when they arrive, not when sent;
// messages whose destination closes or fills up before the timer fires
// count as Dropped. d <= 0 restores immediate delivery.
func (m *Memory) SetDelay(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	m.delay = d
}

// SetPartition assigns an endpoint to a partition. Messages only flow
// between endpoints of the same partition id. Unassigned endpoints are in
// partition 0.
func (m *Memory) SetPartition(name string, id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partition[name] = id
}

// ClearPartitions heals all partitions, symmetric and one-way.
func (m *Memory) ClearPartitions() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partition = make(map[string]int)
	m.oneWay = nil
}

// SetOneWay blocks (or, with blocked false, unblocks) the single directed
// path from -> to, while the reverse direction keeps flowing. This models
// asymmetric partitions: a receiver that has gone deaf to one sender but
// can still be heard by it.
func (m *Memory) SetOneWay(from, to string, blocked bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.oneWay == nil {
		m.oneWay = make(map[[2]string]bool)
	}
	if blocked {
		m.oneWay[[2]string{from, to}] = true
	} else {
		delete(m.oneWay, [2]string{from, to})
	}
}

// Endpoint implements Network.
func (m *Memory) Endpoint(name string) (Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.endpoints[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	ep := &memoryEndpoint{
		net:  m,
		name: name,
		in:   make(chan Message, memoryBuffer),
	}
	m.endpoints[name] = ep
	return ep, nil
}

// Close implements Network.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, ep := range m.endpoints {
		ep.closeLocked()
	}
	return nil
}

// deliver routes a message to its destination, applying fault injection.
func (m *Memory) deliver(msg Message) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.dropRate > 0 && m.rng != nil && !m.dropExempt[msg.From] &&
		m.rng.Float64() < m.dropRate {
		m.stats.Dropped++
		m.mu.Unlock()
		return ErrDropped
	}
	if m.partition[msg.From] != m.partition[msg.To] || m.oneWay[[2]string{msg.From, msg.To}] {
		m.stats.Dropped++
		m.mu.Unlock()
		return ErrDropped
	}
	if d := m.delay; d > 0 {
		// Drop and partition were decided above, at send time; the
		// enqueue (and its stats accounting) happens when the timer
		// fires. Late failures — destination closed or full — count as
		// drops since the sender already saw success.
		m.mu.Unlock()
		time.AfterFunc(d, func() { m.enqueue(msg, true) })
		return nil
	}
	err := m.enqueueLocked(msg)
	m.mu.Unlock()
	return err
}

// enqueue delivers under the lock; lateDropsOnly converts all failures
// into silent Dropped accounting (used by the delay timer path, where the
// sender is long gone).
func (m *Memory) enqueue(msg Message, lateDropsOnly bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if err := m.enqueueLocked(msg); err != nil && lateDropsOnly {
		m.stats.Dropped++
	}
}

// enqueueLocked hands msg to its destination endpoint. Callers hold m.mu;
// enqueueing under the lock means the channel cannot be closed
// concurrently. The buffer is large relative to a round's message count,
// so a full buffer signals gross imbalance; surface it instead of
// blocking with the network lock held.
func (m *Memory) enqueueLocked(msg Message) error {
	dst, ok := m.endpoints[msg.To]
	if !ok || dst.closed {
		return fmt.Errorf("%w: %q", ErrUnknownDest, msg.To)
	}
	select {
	case dst.in <- msg:
		m.stats.Delivered++
		m.stats.Bytes += uint64(len(msg.Payload))
		if classifyPayload(msg.Payload) {
			m.stats.JSON.Frames++
			m.stats.JSON.Bytes += uint64(len(msg.Payload))
		} else {
			m.stats.Binary.Frames++
			m.stats.Binary.Bytes += uint64(len(msg.Payload))
		}
		return nil
	default:
		return fmt.Errorf("transport: %q inbound buffer full", msg.To)
	}
}

// NetStats implements Meter.
func (m *Memory) NetStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// memoryEndpoint is one attachment to a Memory network.
type memoryEndpoint struct {
	net    *Memory
	name   string
	in     chan Message
	closed bool
}

var _ Endpoint = (*memoryEndpoint)(nil)

// Name implements Endpoint.
func (e *memoryEndpoint) Name() string { return e.name }

// Send implements Endpoint.
func (e *memoryEndpoint) Send(msg Message) error {
	msg.From = e.name
	return e.net.deliver(msg)
}

// Recv implements Endpoint.
func (e *memoryEndpoint) Recv() <-chan Message { return e.in }

// Close implements Endpoint.
func (e *memoryEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closeLocked()
	delete(e.net.endpoints, e.name)
	return nil
}

func (e *memoryEndpoint) closeLocked() {
	if !e.closed {
		e.closed = true
		close(e.in)
	}
}
