package broker

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

// BenchmarkPublishFanout measures delivery cost per published message with
// 1000 admitted filtered consumers on one class.
func BenchmarkPublishFanout(b *testing.B) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	br, err := New(brokerProblem(), WithClock(func() time.Time {
		clock = clock.Add(time.Second) // keep the token bucket full
		return clock
	}))
	if err != nil {
		b.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ {
		if _, err := br.AttachConsumer(0, AttrFilter{Attr: "price", Op: CmpGT, Value: 50},
			func(Message) { sink++ }); err != nil {
			b.Fatal(err)
		}
	}
	if err := br.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{1000, 0}}); err != nil {
		b.Fatal(err)
	}
	attrs := map[string]float64{"price": 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(0, attrs, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// fanProblem builds a problem with `flows` flows, one Identity class per
// flow, for the publish-path benchmarks. Rates go up to 1e9 msg/s so a
// real-clock benchmark loop (refilling 1e9 tokens/s from a 1e9-token
// burst) never sees a throttle.
func fanProblem(flows int) *model.Problem {
	p := &model.Problem{Name: "fan"}
	for i := 0; i < flows; i++ {
		p.Flows = append(p.Flows, model.Flow{
			ID: model.FlowID(i), Name: "f", Source: model.NodeID(i), RateMin: 10, RateMax: 1e9,
		})
		p.Nodes = append(p.Nodes, model.Node{
			ID: model.NodeID(i), Capacity: 9e9,
			FlowCost: map[model.FlowID]float64{model.FlowID(i): 1},
		})
		p.Classes = append(p.Classes, model.Class{
			ID: model.ClassID(i), Name: "c", Flow: model.FlowID(i), Node: model.NodeID(i),
			MaxConsumers: 64, CostPerConsumer: 1, Utility: utility.NewLog(10),
		})
	}
	return p
}

// benchBrokerFlows builds a broker over `flows` flows with `consumers`
// admitted filtered consumers per flow, all on the Identity transform.
// The broker runs on the real clock (the production configuration —
// shared fake clocks serialize parallel benchmarks on their own atomic).
func benchBrokerFlows(tb testing.TB, flows, consumers int) *Broker {
	tb.Helper()
	p := fanProblem(flows)
	br, err := New(p)
	if err != nil {
		tb.Fatal(err)
	}
	// Each consumer counts receipts on its own cache line; a counter
	// shared across consumers would serialize the parallel benchmarks on
	// the handler instead of the broker.
	type paddedCount struct {
		n atomic.Uint64
		_ [120]byte
	}
	alloc := model.NewAllocation(p)
	for i := 0; i < flows; i++ {
		for k := 0; k < consumers; k++ {
			recv := new(paddedCount)
			if _, err := br.AttachConsumer(model.ClassID(i),
				AttrFilter{Attr: "price", Op: CmpGT, Value: 50},
				func(Message) { recv.n.Add(1) }); err != nil {
				tb.Fatal(err)
			}
		}
		alloc.Rates[i] = 1e9
		alloc.Consumers[i] = consumers
	}
	if err := br.ApplyAllocation(alloc); err != nil {
		tb.Fatal(err)
	}
	return br
}

// BenchmarkPublishParallel is the contention worst case: every goroutine
// publishes on the same single hot flow (8 admitted consumers, Identity
// transform). Before the copy-on-write data plane this serialized on the
// broker's global mutex; run with -cpu=1,4 to see the scaling.
func BenchmarkPublishParallel(b *testing.B) {
	br := benchBrokerFlows(b, 1, 8)
	attrs := map[string]float64{"price": 80}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := br.Publish(0, attrs, "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublishMultiFlow spreads publishers over 16 flows (8 admitted
// consumers each): the no-sharing best case where per-flow state should
// let distinct flows publish without contending at all.
func BenchmarkPublishMultiFlow(b *testing.B) {
	const flows = 16
	br := benchBrokerFlows(b, flows, 8)
	attrs := map[string]float64{"price": 80}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		flow := model.FlowID(next.Add(1) % flows)
		for pb.Next() {
			if err := br.Publish(flow, attrs, "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchDeltaBroker builds a 10k-flow broker (one class and 2 admitted
// consumers per flow) with its allocation enacted — the incremental
// enact path's scale fixture.
func benchDeltaBroker(tb testing.TB, flows int) (*Broker, model.Allocation) {
	tb.Helper()
	p := fanProblem(flows)
	br, err := New(p)
	if err != nil {
		tb.Fatal(err)
	}
	alloc := model.NewAllocation(p)
	for i := 0; i < flows; i++ {
		for k := 0; k < 2; k++ {
			if _, err := br.AttachConsumer(model.ClassID(i), nil, nil); err != nil {
				tb.Fatal(err)
			}
		}
		alloc.Rates[i] = 1e9
		alloc.Consumers[i] = 2
	}
	if err := br.ApplyAllocation(alloc); err != nil {
		tb.Fatal(err)
	}
	return br, alloc
}

// BenchmarkApplyAllocationDelta: a single-class admission delta on a
// 10k-flow broker. The incremental path should rebuild exactly one
// flow's route slice and share the other 9999 — cost proportional to
// the delta, not the broker. Compare against
// BenchmarkApplyAllocationFullRebuild for the old cost of the same call.
func BenchmarkApplyAllocationDelta(b *testing.B) {
	br, alloc := benchDeltaBroker(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.Consumers[0] = 1 + i%2 // flip one class between 1 and 2 admitted
		if err := br.ApplyAllocation(alloc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyAllocationDeltaParallel contends the same single-class
// delta from all procs (-cpu=1,4): enacts serialize on the broker mutex,
// so per-op cost at -cpu=4 should stay close to -cpu=1 now that the
// critical section no longer rebuilds 10k flows.
func BenchmarkApplyAllocationDeltaParallel(b *testing.B) {
	br, alloc := benchDeltaBroker(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		a := alloc.Clone()
		i := 0
		for pb.Next() {
			i++
			a.Consumers[0] = 1 + i%2
			if err := br.ApplyAllocation(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkApplyAllocationNoop: re-enacting the enacted allocation on a
// 10k-flow broker. Acceptance bar: ≤ 2 allocs/op (designed for 0) and
// no snapshot publication.
func BenchmarkApplyAllocationNoop(b *testing.B) {
	br, alloc := benchDeltaBroker(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.ApplyAllocation(alloc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyAllocationFullRebuild forces the from-scratch snapshot
// build on the same 10k-flow broker — the cost every ApplyAllocation
// paid before the incremental path, kept as the honest baseline for the
// Delta benchmark's speedup claim.
func BenchmarkApplyAllocationFullRebuild(b *testing.B) {
	br, _ := benchDeltaBroker(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.mu.Lock()
		br.rebuildRouteLocked()
		br.mu.Unlock()
	}
}

// BenchmarkApplyAllocation measures enactment cost on the base workload
// with its full consumer population attached.
func BenchmarkApplyAllocation(b *testing.B) {
	p := workload.Base()
	br, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	for j, c := range p.Classes {
		for k := 0; k < c.MaxConsumers; k++ {
			if _, err := br.AttachConsumer(model.ClassID(j), nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	alloc := model.NewAllocation(p)
	for j, c := range p.Classes {
		alloc.Consumers[j] = c.MaxConsumers / 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.Consumers[0] = i % 400 // force real churn
		if err := br.ApplyAllocation(alloc); err != nil {
			b.Fatal(err)
		}
	}
}
