package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/utility"
	"repro/internal/workload"
)

// Micro-benchmarks for the optimizer's inner loops; the table/figure-level
// benchmarks live in the repository root's bench_test.go.

func BenchmarkEngineStepBase(b *testing.B) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStepLarge(b *testing.B) {
	e, err := NewEngine(workload.Scaled(workload.Config{FlowCopies: 4, NodeSetCopies: 2}), Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepMedium is the reference point for the telemetry
// overhead bound: ISSUE 3 requires the enabled-path cost to stay under 5%
// of this benchmark's ns/op (compare against
// BenchmarkEngineStepTelemetryOn, which runs the same workload).
func BenchmarkEngineStepMedium(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 8, NodeSetCopies: 4})
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepTelemetryOff / ...On measure the instrumentation
// cost on the medium workload. Off is asserted allocation-free (the
// nil-handle path must stay one predictable branch); On differs only by
// Config.Telemetry and the two clock reads per stage.
func BenchmarkEngineStepTelemetryOff(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 8, NodeSetCopies: 4})
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Step()
	if allocs := testing.AllocsPerRun(10, func() { e.Step() }); allocs > 0 {
		b.Fatalf("%v allocs per untelemetered Step, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStepTelemetryOn(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 8, NodeSetCopies: 4})
	em := telemetry.NewEngineMetrics(telemetry.NewRegistry())
	e, err := NewEngine(p, Config{Adaptive: true, Telemetry: em})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepHuge is the serial-vs-parallel headline benchmark:
// a production-scale workload (96 flows, 384 nodes, 2560 classes) stepped
// at increasing worker counts. Workers=1 is the serial baseline; the
// parallel sub-benchmarks shard every stage. `make bench-core` records the
// trajectory in BENCH_core.json.
func BenchmarkEngineStepHuge(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 16, NodeSetCopies: 8})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := NewEngine(p, Config{Adaptive: true, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// metroOnce lazily builds the full metro problem (10k flows, 100k nodes,
// 1M classes; ~100ms and a few hundred MB) once, shared read-only across
// the worker sub-benchmarks.
var metroOnce struct {
	sync.Once
	p *model.Problem
}

// BenchmarkEngineStepMetro is the headline scaling benchmark: the full
// metro workload stepped at increasing worker counts after settling to
// steady state, where the hot pods keep roughly a quarter of the flows
// orbiting the admission/price limit cycle and the cold pods quiesce onto
// the incremental skip path. The pod structure is componentized, so the
// sharded engines run the fused single-barrier schedule (DESIGN.md §5).
// Build plus settle cost tens of seconds, so -short (and the CI
// bench-smoke) runs BenchmarkEngineStepMetroSmall instead.
func BenchmarkEngineStepMetro(b *testing.B) {
	if testing.Short() {
		b.Skip("full metro benchmark in -short mode")
	}
	metroOnce.Do(func() { metroOnce.p = workload.Metro() })
	benchMetroWorkers(b, metroOnce.p, 80)
}

// BenchmarkEngineStepMetroSmall is the CI-sized metro scaling smoke: same
// pod structure and steady-state mix at 1/400th the class count, small
// enough for -benchtime=1x runs and the scripts/bench-scaling.sh assert.
func BenchmarkEngineStepMetroSmall(b *testing.B) {
	benchMetroWorkers(b, workload.MetroSmall(), 120)
}

func benchMetroWorkers(b *testing.B, p *model.Problem, settle int) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := NewEngine(p, Config{Adaptive: true, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for i := 0; i < settle; i++ {
				e.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// steadyStateProblem is the Huge workload (96 flows, 384 nodes, 2560
// classes) in its production steady state: flow copy 0's node sets stay at
// the paper's capacity and keep orbiting the admission/price limit cycle
// (a saturated LRGP subsystem never freezes), while the other 15 copies
// have capacity headroom, admit all demand and reach an exact float
// fixpoint. At steady state 6/96 flows stay dirty and 360/384 nodes are
// skipped — the sparsity the incremental Step monetizes.
func steadyStateProblem() *model.Problem {
	p := workload.Scaled(workload.Config{FlowCopies: 16, NodeSetCopies: 8})
	for b := 24; b < len(p.Nodes); b++ {
		p.Nodes[b].Capacity *= 250
	}
	return p
}

// BenchmarkEngineStepSteadyState is the incremental-engine headline
// benchmark: the post-convergence Step on the mixed steady-state workload,
// incremental (default) vs full recompute (Config.FullRecompute), serial
// and sharded. The ISSUE 5 acceptance bar is incremental ≥ 2x faster than
// full at workers=1.
func BenchmarkEngineStepSteadyState(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full", true}} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(b *testing.B) {
				e, err := NewEngine(steadyStateProblem(), Config{
					Adaptive: true, Workers: workers, FullRecompute: mode.full,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				for i := 0; i < 700; i++ {
					e.Step() // settle: converge + quiesce the provisioned copies
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

// BenchmarkSweepWarmStart measures re-solving a 6-point capacity sweep on
// the Large workload: cold constructs a fresh engine per point (the old
// lrgp-experiments behavior), warm Resets one engine through the points in
// order, re-solving each from the previous fixpoint.
func BenchmarkSweepWarmStart(b *testing.B) {
	scales := []float64{1, 0.9, 0.8, 0.95, 1.1, 1.25}
	points := make([]*model.Problem, len(scales))
	for k, s := range scales {
		points[k] = workload.Scaled(workload.Config{FlowCopies: 4, NodeSetCopies: 2})
		for n := range points[k].Nodes {
			points[k].Nodes[n].Capacity *= s
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range points {
				e, err := NewEngine(p.Clone(), Config{Adaptive: true, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				e.Solve(400)
				e.Close()
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e, err := NewEngine(points[0].Clone(), Config{Adaptive: true, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		e.Solve(400)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range points {
				if err := e.Reset(p); err != nil {
					b.Fatal(err)
				}
				e.Solve(400)
			}
		}
	})
}

func BenchmarkEngineSolveBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(workload.Base(), Config{Adaptive: true})
		if err != nil {
			b.Fatal(err)
		}
		e.Solve(250)
	}
}

func BenchmarkGreedyPopulations(b *testing.B) {
	p := workload.Base()
	ix := model.NewIndex(p)
	rates := make([]float64, len(p.Flows))
	for i := range rates {
		rates[i] = 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyPopulations(p, ix, rates)
	}
}

func BenchmarkRateSolverClosedForm(b *testing.B) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20), utility.NewLog(5), utility.NewLog(1))
	rs := newRateSolver(p, ix, 0)
	consumers := []int{100, 200, 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.solve(consumers, 37.5)
	}
}

func BenchmarkRateSolverBisection(b *testing.B) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20), utility.NewPower(10, 0.5))
	rs := newRateSolver(p, ix, 0)
	consumers := []int{100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.solve(consumers, 37.5)
	}
}
