package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SweepRow records one capacity scale of the warm-start sweep: the same
// point solved cold (fresh engine, prices and rates from zero) and warm
// (Engine.Reset from the previous point's fixpoint).
type SweepRow struct {
	// Scale multiplies every node capacity of the base workload.
	Scale float64
	// Cold-start results.
	ColdUtility     float64
	ColdConverged   bool
	ColdConvergedAt int
	// Warm-start results (first point is solved cold by definition, so
	// its warm numbers equal the cold ones).
	WarmUtility     float64
	WarmConverged   bool
	WarmConvergedAt int
}

// itersOrMax returns the iterations-to-converge, or max when the 0.1%
// amplitude rule was never met within the horizon.
func itersOrMax(converged bool, at, max int) int {
	if converged {
		return at
	}
	return max
}

// SweepResult is the full cold-vs-warm sweep record.
type SweepResult struct {
	Rows []SweepRow
	// Horizon is the per-point iteration budget.
	Horizon int
	// ColdIters and WarmIters total the iterations-to-converge across all
	// points (unconverged points count the full horizon), the number the
	// warm-start API exists to shrink.
	ColdIters int
	WarmIters int
}

// WarmStartSweep solves the base workload across a node-capacity sweep
// twice: cold constructs a fresh engine per point (every price and rate
// restarts from the initializer), warm keeps one engine and Engine.Reset's
// it onto each point in order, re-solving from the neighboring fixpoint.
// Both traversals visit identical problems, so the utilities agree to
// within the convergence band (a saturated workload orbits a small limit
// cycle, so the sampled utilities differ in the last fraction of a
// percent); the interesting delta is iterations-to-converge.
func WarmStartSweep(opts Options) (*SweepResult, error) {
	o := opts.normalized()
	horizon := 2 * o.Iterations
	scales := []float64{1, 0.95, 0.9, 0.85, 0.8, 0.9, 1, 1.1}

	point := func(scale float64) *model.Problem {
		p := workload.Base()
		for b := range p.Nodes {
			p.Nodes[b].Capacity *= scale
		}
		return p
	}

	res := &SweepResult{Horizon: horizon}
	var warm *core.Engine
	for k, scale := range scales {
		row := SweepRow{Scale: scale}

		cold, err := core.NewEngine(point(scale), o.engineConfig(core.Config{Adaptive: true}))
		if err != nil {
			return nil, err
		}
		cr := cold.Solve(horizon)
		cold.Close()
		row.ColdUtility = cr.Utility
		row.ColdConverged = cr.Converged
		row.ColdConvergedAt = cr.ConvergedAt

		if k == 0 {
			warm, err = core.NewEngine(point(scale), o.engineConfig(core.Config{Adaptive: true}))
			if err != nil {
				return nil, err
			}
			defer warm.Close()
		} else if err := warm.Reset(point(scale)); err != nil {
			return nil, err
		}
		wr := warm.Solve(horizon)
		row.WarmUtility = wr.Utility
		row.WarmConverged = wr.Converged
		row.WarmConvergedAt = wr.ConvergedAt

		res.ColdIters += itersOrMax(row.ColdConverged, row.ColdConvergedAt, horizon)
		res.WarmIters += itersOrMax(row.WarmConverged, row.WarmConvergedAt, horizon)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderSweep renders the sweep in the experiment table layout.
func RenderSweep(res *SweepResult) *trace.Table {
	t := trace.NewTable("X8: warm-started capacity sweep (base workload, Engine.Reset)",
		"Capacity scale", "Cold iters", "Cold utility", "Warm iters", "Warm utility")
	fmtIters := func(converged bool, at int) string {
		if !converged {
			return fmt.Sprintf(">%d", res.Horizon)
		}
		return fmt.Sprint(at)
	}
	for k, r := range res.Rows {
		warmIters := fmtIters(r.WarmConverged, r.WarmConvergedAt)
		if k == 0 {
			warmIters += " (cold)"
		}
		t.Add(
			fmt.Sprintf("%.2fx", r.Scale),
			fmtIters(r.ColdConverged, r.ColdConvergedAt),
			fmt.Sprintf("%.0f", r.ColdUtility),
			warmIters,
			fmt.Sprintf("%.0f", r.WarmUtility),
		)
	}
	t.Add("total", fmt.Sprint(res.ColdIters), "", fmt.Sprint(res.WarmIters), "")
	return t
}
