package dist

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/transport"
	"repro/internal/workload"
)

// heteroProblem is the multirate showcase workload.
func heteroProblem() *model.Problem {
	return workload.Heterogeneous()
}

// TestMultirateSyncMatchesEngine: the distributed multirate cluster must
// produce the multirate engine's utility trajectory round for round, on
// both the heterogeneous showcase and the paper's base workload.
func TestMultirateSyncMatchesEngine(t *testing.T) {
	for _, p := range []*model.Problem{heteroProblem(), workload.Base()} {
		coreCfg := core.Config{Adaptive: true}

		e, err := multirate.NewEngine(p.Clone(), coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 50
		var engineTrace []float64
		for i := 0; i < rounds; i++ {
			engineTrace = append(engineTrace, e.Step())
		}

		net := transport.NewMemory()
		cl, err := New(p, Config{Core: coreCfg, Multirate: true}, net)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := cl.Run(rounds, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		net.Close()

		if len(stats) != rounds {
			t.Fatalf("%s: got %d rounds, want %d", p.Name, len(stats), rounds)
		}
		for i, s := range stats {
			if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
				t.Fatalf("%s round %d: dist %g vs engine %g", p.Name, i+1, s.Utility, engineTrace[i])
			}
		}
	}
}

// TestMultirateAsyncConverges runs the multirate agents in the free-
// running asynchronous mode and requires the sampled utility to hold the
// multirate engine's band — the two extensions (async §3.5 + multirate §5)
// compose.
func TestMultirateAsyncConverges(t *testing.T) {
	p := heteroProblem()

	ref, err := multirate.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(600).Utility

	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{
		Core:      core.Config{Adaptive: true},
		Mode:      Async,
		Tick:      time.Millisecond,
		Multirate: true,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	deadline := time.After(20 * time.Second)
	inBand := 0
	for {
		select {
		case <-deadline:
			t.Fatalf("async multirate did not reach %g; last %g", want, cl.Sample().Utility)
		default:
		}
		s := cl.Sample()
		if math.Abs(s.Utility-want)/want < 0.02 {
			inBand++
			if inBand >= 10 {
				return
			}
		} else {
			inBand = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultirateSyncBeatsSingleRate sanity-checks that the distributed
// multirate mode realizes the multirate gain end to end.
func TestMultirateSyncBeatsSingleRate(t *testing.T) {
	p := heteroProblem()

	run := func(multirateMode bool) float64 {
		net := transport.NewMemory()
		defer net.Close()
		cl, err := New(p.Clone(), Config{
			Core:      core.Config{Adaptive: true},
			Multirate: multirateMode,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		stats, err := cl.Run(120, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return stats[len(stats)-1].Utility
	}

	single := run(false)
	multi := run(true)
	if multi <= single*1.20 {
		t.Errorf("distributed multirate %.0f not >20%% above single-rate %.0f", multi, single)
	}
}
