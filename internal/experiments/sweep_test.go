package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWarmStartSweep(t *testing.T) {
	res, err := WarmStartSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("only %d sweep points", len(res.Rows))
	}
	// The first point has no previous fixpoint: warm == cold exactly.
	first := res.Rows[0]
	if first.WarmConvergedAt != first.ColdConvergedAt || first.WarmUtility != first.ColdUtility {
		t.Errorf("first point warm (%d, %g) != cold (%d, %g)",
			first.WarmConvergedAt, first.WarmUtility, first.ColdConvergedAt, first.ColdUtility)
	}
	// Cold and warm solve identical problems, so utilities agree to
	// within the convergence band at every point.
	for _, r := range res.Rows {
		if r.ColdUtility <= 0 || !r.ColdConverged || !r.WarmConverged {
			t.Errorf("scale %.2f did not converge: %+v", r.Scale, r)
			continue
		}
		if rel := math.Abs(r.WarmUtility-r.ColdUtility) / r.ColdUtility; rel > 0.005 {
			t.Errorf("scale %.2f: warm utility %g vs cold %g (rel %g)",
				r.Scale, r.WarmUtility, r.ColdUtility, rel)
		}
	}
	// The warm-start API's reason to exist: re-solving a perturbed
	// problem from the neighboring fixpoint takes fewer total iterations.
	if res.WarmIters >= res.ColdIters {
		t.Errorf("warm sweep took %d iterations, cold %d; expected warm cheaper",
			res.WarmIters, res.ColdIters)
	}
}

func TestRenderSweep(t *testing.T) {
	res, err := WarmStartSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderSweep(res).Render(&sb)
	out := sb.String()
	for _, want := range []string{"warm-started capacity sweep", "Cold iters", "Warm iters", "(cold)", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}
