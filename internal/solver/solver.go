// Package solver provides the one-dimensional numeric root finding used by
// the LRGP rate-allocation step. The stationarity condition of Equation 7,
//
//	sum_j n_j * U_j'(r) = PL_i + PB_i,
//
// is a root of a strictly decreasing function of r (each U_j is strictly
// concave so each U_j' is strictly decreasing). Bisection on a bracketing
// interval is therefore exact up to tolerance; Newton iteration with a
// bisection safeguard is offered as a faster alternative when the caller
// can supply the derivative.
package solver

import (
	"errors"
	"fmt"
	"math"
)

// Default iteration limits and tolerances. 200 bisection steps reduce any
// bracketing interval below double-precision resolution; the solvers stop
// earlier once tolerances are met.
const (
	DefaultMaxIter = 200
	DefaultXTol    = 1e-12
	DefaultFTol    = 1e-12
)

// Errors reported by the solvers.
var (
	ErrNoBracket = errors.New("solver: interval does not bracket a root")
	ErrBadRange  = errors.New("solver: invalid interval")
	ErrMaxIter   = errors.New("solver: iteration limit exceeded")
)

// Options tunes a solve. The zero value selects the defaults above.
type Options struct {
	// MaxIter caps the iteration count (default DefaultMaxIter).
	MaxIter int
	// XTol is the absolute tolerance on the root position.
	XTol float64
	// FTol is the absolute tolerance on the function value.
	FTol float64
}

func (o Options) normalized() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = DefaultMaxIter
	}
	if o.XTol <= 0 {
		o.XTol = DefaultXTol
	}
	if o.FTol <= 0 {
		o.FTol = DefaultFTol
	}
	return o
}

// Bisect finds x in [lo, hi] with f(x) = 0 by bisection. f must be
// continuous and f(lo), f(hi) must have opposite signs (or one endpoint may
// itself be a root). The returned root satisfies either |f(x)| <= FTol or a
// final interval width <= XTol.
func Bisect(f func(float64) float64, lo, hi float64, opts Options) (float64, error) {
	o := opts.normalized()
	if !(lo <= hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrBadRange, lo, hi)
	}

	flo, fhi := f(lo), f(hi)
	if math.Abs(flo) <= o.FTol {
		return lo, nil
	}
	if math.Abs(fhi) <= o.FTol {
		return hi, nil
	}
	if flo*fhi > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}

	for i := 0; i < o.MaxIter; i++ {
		mid := lo + (hi-lo)/2
		fmid := f(mid)
		switch {
		case math.Abs(fmid) <= o.FTol, hi-lo <= o.XTol:
			return mid, nil
		case flo*fmid < 0:
			hi = mid
		default:
			lo, flo = mid, fmid
		}
	}
	return lo + (hi-lo)/2, nil
}

// NewtonBisect finds a root of f in [lo, hi] using Newton steps safeguarded
// by a shrinking bisection bracket: any Newton step that leaves the current
// bracket, or that makes insufficient progress, is replaced by a bisection
// step. df is the derivative of f. The same bracketing precondition as
// Bisect applies.
func NewtonBisect(f, df func(float64) float64, lo, hi float64, opts Options) (float64, error) {
	o := opts.normalized()
	if !(lo <= hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrBadRange, lo, hi)
	}

	flo, fhi := f(lo), f(hi)
	if math.Abs(flo) <= o.FTol {
		return lo, nil
	}
	if math.Abs(fhi) <= o.FTol {
		return hi, nil
	}
	if flo*fhi > 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}

	x := lo + (hi-lo)/2
	fx := f(x)
	for i := 0; i < o.MaxIter; i++ {
		if math.Abs(fx) <= o.FTol || hi-lo <= o.XTol {
			return x, nil
		}

		// Maintain the bracket around the sign change.
		if flo*fx < 0 {
			hi = x
		} else {
			lo, flo = x, fx
		}

		// Try a Newton step from x; fall back to bisection if it exits
		// the bracket or the derivative is unusable.
		var next float64
		d := df(x)
		if d != 0 && !math.IsNaN(d) && !math.IsInf(d, 0) {
			next = x - fx/d
		} else {
			next = math.NaN()
		}
		if math.IsNaN(next) || next <= lo || next >= hi {
			next = lo + (hi-lo)/2
		}
		x = next
		fx = f(x)
	}
	return x, nil
}

// BracketDecreasing expands an upper bound for a strictly decreasing f with
// f(lo) > 0, returning hi >= lo with f(hi) <= 0, growing geometrically from
// the given initial guess. It reports ErrNoBracket if no sign change is
// found within maxExpand doublings.
func BracketDecreasing(f func(float64) float64, lo, hint float64, maxExpand int) (float64, error) {
	if maxExpand <= 0 {
		maxExpand = 64
	}
	hi := hint
	if hi <= lo {
		hi = lo + 1
	}
	for i := 0; i < maxExpand; i++ {
		if f(hi) <= 0 {
			return hi, nil
		}
		hi *= 2
	}
	return 0, fmt.Errorf("%w: no sign change up to %g", ErrNoBracket, hi)
}
