package broker

import (
	"testing"
	"time"
)

// autopilotFixture: a 4-flow fan broker on a fake clock with an autopilot
// around it.
func autopilotFixture(t *testing.T) (*Broker, *Autopilot, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	b, err := New(fanProblem(4), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAutopilot(b, AutopilotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return b, a, clock
}

// TestAutopilotEnactsDemand: a cycle picks up attached demand, solves,
// and enacts admissions through the broker; a cycle with unchanged
// demand skips enactment.
func TestAutopilotEnactsDemand(t *testing.T) {
	b, a, clock := autopilotFixture(t)
	var ids []ConsumerID
	for k := 0; k < 4; k++ {
		id, err := b.AttachConsumer(1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	clock.Advance(time.Second)
	alloc, enacted, err := a.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !enacted {
		t.Fatal("first cycle with fresh demand did not enact")
	}
	if alloc.Consumers[1] != 4 {
		t.Errorf("solved admission for class 1 = %d, want 4 (capacity is ample)", alloc.Consumers[1])
	}
	cs, err := b.ClassStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Admitted != alloc.Consumers[1] {
		t.Errorf("broker admitted %d, want enacted %d", cs.Admitted, alloc.Consumers[1])
	}

	// Steady state: nothing changed, the re-solve lands on the same
	// fixpoint and the cycle skips.
	clock.Advance(time.Second)
	_, enacted, err = a.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if enacted {
		t.Error("steady-state cycle enacted; want skip under threshold")
	}
	st := a.Stats()
	if st.Cycles != 2 || st.Enacted != 1 || st.Skipped != 1 {
		t.Errorf("stats = %+v, want 2 cycles / 1 enacted / 1 skipped", st)
	}
	if st.DemandConsumers != 4 {
		t.Errorf("observed demand = %d, want 4", st.DemandConsumers)
	}

	// Shrinking demand reverses class 1's direction: the cycle enacts
	// and the oscillation score turns positive.
	for _, id := range ids[1:] {
		if err := b.DetachConsumer(id); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(time.Second)
	_, enacted, err = a.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !enacted {
		t.Fatal("demand-shrink cycle did not enact")
	}
	if st := a.Stats(); st.Oscillation <= 0 {
		t.Errorf("oscillation after direction reversal = %g, want > 0", st.Oscillation)
	}
}

// TestAutopilotOfferedRateCapsBound: the offered-rate estimate (with
// headroom) shrinks the autopilot's private RateMax toward actual load,
// never touching the broker's problem or dropping below RateMin.
func TestAutopilotOfferedRateCapsBound(t *testing.T) {
	b, a, clock := autopilotFixture(t)
	if _, err := b.AttachConsumer(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Offer ~100 msg/s on flow 0 for one fake-clock second. The broker
	// starts at RateMin=10, so most publishes throttle — offered-rate
	// estimation counts attempts (published + throttled), not grants.
	for k := 0; k < 100; k++ {
		clock.Advance(10 * time.Millisecond)
		_ = b.Publish(0, nil, "x")
	}
	if _, _, err := a.Cycle(); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	got := a.prob.Flows[0].RateMax
	a.mu.Unlock()
	if got >= 1e9 || got < 10 {
		t.Errorf("flow 0 effective RateMax = %g, want in [RateMin, 1e9) after offered ~100/s", got)
	}
	if want := 100 * 1.25; got > 2*want {
		t.Errorf("flow 0 effective RateMax = %g, want about %g", got, want)
	}
	if b.Problem().Flows[0].RateMax != 1e9 {
		t.Error("autopilot mutated the broker's shared problem")
	}
}

// TestAutopilotLoop: the background loop runs cycles until stopped.
func TestAutopilotLoop(t *testing.T) {
	b, err := New(fanProblem(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAutopilot(b, AutopilotConfig{ItersPerCycle: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := b.AttachConsumer(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := a.Loop(time.Millisecond, stop, nil)
	deadline := time.After(5 * time.Second)
	for a.Stats().Cycles < 3 {
		select {
		case <-deadline:
			t.Fatal("autopilot loop made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done
	if st := a.Stats(); st.Enacted == 0 {
		t.Errorf("loop stats = %+v, want at least one enacted cycle", st)
	}
}

// TestAutopilotUsesEnactPath: steady-state cycles must not republish
// route snapshots — the skip threshold plus the broker's delta path keep
// the data plane's snapshot stable while the loop spins.
func TestAutopilotUsesEnactPath(t *testing.T) {
	b, a, clock := autopilotFixture(t)
	if _, err := b.AttachConsumer(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if _, _, err := a.Cycle(); err != nil {
		t.Fatal(err)
	}
	before := b.route.Load()
	for k := 0; k < 5; k++ {
		clock.Advance(time.Second)
		if _, _, err := a.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	if b.route.Load() != before {
		t.Error("steady-state autopilot cycles republished the route snapshot")
	}
}
