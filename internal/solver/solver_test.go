package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBisectLinear(t *testing.T) {
	f := func(x float64) float64 { return 2*x - 4 }
	root, err := Bisect(f, 0, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-2) > 1e-9 {
		t.Errorf("root = %g, want 2", root)
	}
}

func TestBisectDecreasing(t *testing.T) {
	// The LRGP stationarity shape: strictly decreasing marginal utility.
	f := func(r float64) float64 { return 100/(1+r) - 5 }
	root, err := Bisect(f, 0, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-19) > 1e-6 {
		t.Errorf("root = %g, want 19", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	root, err := Bisect(f, 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("root = %g, want 0 (endpoint)", root)
	}
	root, err = Bisect(func(x float64) float64 { return x - 5 }, 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root != 5 {
		t.Errorf("root = %g, want 5 (endpoint)", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, Options{}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("error = %v, want ErrNoBracket", err)
	}
}

func TestBisectBadRange(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := Bisect(f, 2, 1, Options{}); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v, want ErrBadRange", err)
	}
	if _, err := Bisect(f, math.NaN(), 1, Options{}); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v, want ErrBadRange for NaN", err)
	}
}

func TestNewtonBisectQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	root, err := NewtonBisect(f, df, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %g, want sqrt(2)", root)
	}
}

func TestNewtonBisectSurvivesBadDerivative(t *testing.T) {
	// Zero derivative everywhere forces pure bisection fallback.
	f := func(x float64) float64 { return x - 3 }
	df := func(float64) float64 { return 0 }
	root, err := NewtonBisect(f, df, 0, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-3) > 1e-9 {
		t.Errorf("root = %g, want 3", root)
	}
}

func TestNewtonBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x + 10 }
	df := func(float64) float64 { return 1 }
	if _, err := NewtonBisect(f, df, 0, 1, Options{}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("error = %v, want ErrNoBracket", err)
	}
}

func TestNewtonBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	df := func(float64) float64 { return 1 }
	root, err := NewtonBisect(f, df, 1, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if root != 1 {
		t.Errorf("root = %g, want 1", root)
	}
}

func TestBracketDecreasing(t *testing.T) {
	f := func(x float64) float64 { return 1000 - x }
	hi, err := BracketDecreasing(f, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f(hi) > 0 {
		t.Errorf("f(%g) = %g, want <= 0", hi, f(hi))
	}
}

func TestBracketDecreasingFailure(t *testing.T) {
	f := func(float64) float64 { return 1 } // never crosses
	if _, err := BracketDecreasing(f, 1, 2, 8); !errors.Is(err, ErrNoBracket) {
		t.Errorf("error = %v, want ErrNoBracket", err)
	}
}

// TestBisectPropertyRandomDecreasing solves randomized LRGP-like
// stationarity equations and verifies the residual is tiny.
func TestBisectPropertyRandomDecreasing(t *testing.T) {
	prop := func(scaleSeed, priceSeed uint16) bool {
		scale := 1 + float64(scaleSeed)          // in [1, 65536]
		price := 1e-4 + float64(priceSeed)/65536 // in (0, ~1)
		f := func(r float64) float64 { return scale/(1+r) - price }
		if f(0) <= 0 || f(1e9) >= 0 {
			return true // not bracketed in test interval, skip
		}
		root, err := Bisect(f, 0, 1e9, Options{})
		if err != nil {
			return false
		}
		want := scale/price - 1
		return math.Abs(root-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Error(err)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.MaxIter != DefaultMaxIter || o.XTol != DefaultXTol || o.FTol != DefaultFTol {
		t.Errorf("normalized zero Options = %+v", o)
	}
	o = Options{MaxIter: 5, XTol: 1e-3, FTol: 1e-4}.normalized()
	if o.MaxIter != 5 || o.XTol != 1e-3 || o.FTol != 1e-4 {
		t.Errorf("normalized custom Options = %+v", o)
	}
}
