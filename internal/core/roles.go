package core

import "repro/internal/model"

// Per-role primitives of LRGP, exported for the distributed runtime
// (package dist) so the message-passing agents execute exactly the same
// arithmetic as the in-process Engine.

// RateAllocator is the flow-source half of Algorithm 1: it owns one flow's
// rate computation.
type RateAllocator struct {
	rs *rateSolver
}

// NewRateAllocator prepares the allocator for flow fid.
func NewRateAllocator(p *model.Problem, ix *model.Index, fid model.FlowID) *RateAllocator {
	return &RateAllocator{rs: newRateSolver(p, ix, fid)}
}

// Rate returns the Equation 7 maximizer given the populations (full-length
// slice indexed by ClassID; only this flow's classes are read) and the
// aggregate path price P = PL_i + PB_i.
func (ra *RateAllocator) Rate(consumers []int, price float64) float64 {
	return ra.rs.solve(consumers, price)
}

// NodeAllocation is the outcome of one node's greedy consumer allocation.
type NodeAllocation struct {
	// Used is used_b(t): total node resource consumed.
	Used float64
	// BestUnsatisfied is BC(b,t) of Equation 11 (0 when all classes are
	// fully admitted).
	BestUnsatisfied float64
}

// NodeAllocator is the node half of Algorithm 2: greedy admission for the
// classes attached at one node.
type NodeAllocator struct {
	p      *model.Problem
	ix     *model.Index
	node   model.NodeID
	active []bool
}

// NewNodeAllocator prepares the allocator for node b. All flows are
// initially active.
func NewNodeAllocator(p *model.Problem, ix *model.Index, b model.NodeID) *NodeAllocator {
	active := make([]bool, len(p.Flows))
	for i := range active {
		active[i] = true
	}
	return &NodeAllocator{p: p, ix: ix, node: b, active: active}
}

// SetFlowActive marks a flow as participating or not (a departed flow's
// classes are forced to zero consumers).
func (na *NodeAllocator) SetFlowActive(i model.FlowID, active bool) {
	na.active[i] = active
}

// Allocate runs the greedy admission for the given rates (full-length
// slice indexed by FlowID), writing populations into consumers (full-length
// slice indexed by ClassID; only this node's classes are written).
func (na *NodeAllocator) Allocate(rates []float64, consumers []int) NodeAllocation {
	res := admitNode(na.p, na.ix, na.node, rates, na.active, consumers, nil, nil, 0)
	return NodeAllocation{Used: res.used, BestUnsatisfied: res.bestUnsatisfied}
}

// NodePriceStep applies the Equation 12 node-price update (see
// nodePriceUpdate) — exported for the distributed node agent.
func NodePriceStep(price, bestBC, used, capacity, gamma1, gamma2 float64) float64 {
	return nodePriceUpdate(price, bestBC, used, capacity, gamma1, gamma2)
}

// LinkPriceStep applies the Equation 13 link-price update — exported for
// the distributed node agent that owns the link.
func LinkPriceStep(price, used, capacity, gamma float64) float64 {
	return linkPriceUpdate(price, used, capacity, gamma)
}

// AdaptiveGamma is the Section 4.2 adaptive stepsize controller, exported
// for the distributed node agent.
type AdaptiveGamma struct {
	g gammaController
}

// NewAdaptiveGamma builds a controller from the engine configuration
// (GammaInit/GammaMin/GammaMax/GammaStep are honored).
func NewAdaptiveGamma(cfg Config) *AdaptiveGamma {
	return &AdaptiveGamma{g: newGammaController(cfg.normalized())}
}

// Observe folds in the latest price-update gap (see PriceGap) and the
// price level it applied to, returning the stepsize for the next update.
func (a *AdaptiveGamma) Observe(gap, price float64) float64 {
	return a.g.observe(gap, price)
}

// PriceGap exposes the controller's input signal for the distributed node
// agent: the distance the Equation 12 update pulls the price.
func PriceGap(price, bestBC, used, capacity float64) float64 {
	return priceGap(price, bestBC, used, capacity)
}

// Value returns the current stepsize without observing anything.
func (a *AdaptiveGamma) Value() float64 {
	return a.g.gamma
}
