package dist

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/transport"
)

// nodeAgent runs Algorithm 2 (greedy consumer allocation plus the Equation
// 12 price update) for one node, and Algorithm 3 (Equation 13) for the
// links it owns (links whose To endpoint is this node, per the paper's
// footnote that one of the two endpoint nodes computes a link's price).
type nodeAgent struct {
	p    *model.Problem
	node model.NodeID
	ep   transport.Endpoint
	cfg  core.Config

	alloc *core.NodeAllocator
	gamma *core.AdaptiveGamma
	// mrAlloc is non-nil in multirate mode and replaces alloc; deliveries
	// buffers the per-class delivery rates it computes.
	mrAlloc    *multirate.NodeAllocator
	deliveries []float64

	// classes attached at this node.
	classes []model.ClassID
	// ownedLinks and their static flow coefficients.
	ownedLinks []model.LinkID
	linkFlows  map[model.LinkID][]model.FlowID

	// expected is the set of flows whose rates this agent needs each
	// round: flows through the node plus flows of owned links.
	expected map[model.FlowID]bool
	// peers maps each expected flow to its agent endpoint name.
	peers map[model.FlowID]string

	// Dynamic state.
	rates      []float64
	consumers  []int
	price      float64
	linkPrices map[model.LinkID]float64
	inactive   map[model.FlowID]bool
	tickEvery  time.Duration

	done chan struct{}
}

func newNodeAgent(p *model.Problem, ix *model.Index, b model.NodeID, ep transport.Endpoint, cfg core.Config, tick time.Duration, multirateMode bool) *nodeAgent {
	na := &nodeAgent{
		p:          p,
		node:       b,
		ep:         ep,
		cfg:        cfg,
		alloc:      core.NewNodeAllocator(p, ix, b),
		gamma:      core.NewAdaptiveGamma(cfg),
		classes:    ix.ClassesByNode(b),
		linkFlows:  make(map[model.LinkID][]model.FlowID),
		expected:   make(map[model.FlowID]bool),
		peers:      make(map[model.FlowID]string),
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		price:      cfg.InitialNodePrice,
		linkPrices: make(map[model.LinkID]float64),
		inactive:   make(map[model.FlowID]bool),
		tickEvery:  tick,
		done:       make(chan struct{}),
	}
	for _, i := range ix.FlowsByNode(b) {
		na.expected[i] = true
		na.peers[i] = flowName(i)
	}
	for l := range p.Links {
		if p.Links[l].To != b {
			continue
		}
		lid := model.LinkID(l)
		na.ownedLinks = append(na.ownedLinks, lid)
		na.linkPrices[lid] = cfg.InitialLinkPrice
		for _, i := range ix.FlowsByLink(lid) {
			na.linkFlows[lid] = append(na.linkFlows[lid], i)
			na.expected[i] = true
			na.peers[i] = flowName(i)
		}
	}
	if multirateMode {
		na.mrAlloc = multirate.NewNodeAllocator(p, ix, b)
		na.deliveries = make([]float64, len(p.Classes))
	}
	return na
}

// compute runs one allocation + price update from the current rates and
// returns the report to broadcast.
func (na *nodeAgent) compute(round int) reportMsg {
	var out core.NodeAllocation
	if na.mrAlloc != nil {
		mrOut := na.mrAlloc.Allocate(na.rates, na.price, na.consumers, na.deliveries)
		out = core.NodeAllocation{Used: mrOut.Used, BestUnsatisfied: mrOut.BestUnsatisfied}
	} else {
		out = na.alloc.Allocate(na.rates, na.consumers)
	}

	gamma1, gamma2 := na.cfg.Gamma1, na.cfg.Gamma2
	if na.cfg.Adaptive {
		gamma1 = na.gamma.Value()
		gamma2 = gamma1
	}
	prev := na.price
	capacity := na.p.Nodes[na.node].Capacity
	na.price = core.NodePriceStep(prev, out.BestUnsatisfied, out.Used, capacity, gamma1, gamma2)
	if na.cfg.Adaptive {
		na.gamma.Observe(core.PriceGap(prev, out.BestUnsatisfied, out.Used, capacity), prev)
	}

	rm := reportMsg{
		Round:  round,
		Node:   na.node,
		Price:  na.price,
		Used:   out.Used,
		BestBC: out.BestUnsatisfied,
	}
	if len(na.classes) > 0 {
		rm.Populations = make(map[model.ClassID]int, len(na.classes))
		for _, cid := range na.classes {
			rm.Populations[cid] = na.consumers[cid]
		}
		if na.mrAlloc != nil {
			rm.Deliveries = make(map[model.ClassID]float64, len(na.classes))
			for _, cid := range na.classes {
				rm.Deliveries[cid] = na.deliveries[cid]
			}
		}
	}
	if len(na.ownedLinks) > 0 {
		rm.LinkPrices = make(map[model.LinkID]float64, len(na.ownedLinks))
		for _, lid := range na.ownedLinks {
			used := 0.0
			for _, i := range na.linkFlows[lid] {
				used += na.p.Links[lid].FlowCost[i] * na.rates[i]
			}
			na.linkPrices[lid] = core.LinkPriceStep(na.linkPrices[lid], used, na.p.Links[lid].Capacity, na.cfg.LinkGamma)
			rm.LinkPrices[lid] = na.linkPrices[lid]
		}
	}
	return rm
}

// broadcast sends a report to every (still expected) flow agent and the
// collector. As in flowAgent.announce, only a closed transport is fatal;
// lossy-delivery failures are tolerated.
func (na *nodeAgent) broadcast(rm reportMsg) error {
	for i, peer := range na.peers {
		if na.inactive[i] {
			continue
		}
		msg, err := transport.Encode(na.ep.Name(), peer, reportKind, rm)
		if err != nil {
			return err
		}
		if err := na.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
			return fmt.Errorf("dist: node %d report to %s: %w", na.node, peer, err)
		}
	}
	msg, err := transport.Encode(na.ep.Name(), collectorName, reportKind, rm)
	if err != nil {
		return err
	}
	if err := na.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
		return err
	}
	return nil
}

// markInactive processes a flow departure.
func (na *nodeAgent) markInactive(i model.FlowID) {
	na.inactive[i] = true
	na.rates[i] = 0
	na.alloc.SetFlowActive(i, false)
	if na.mrAlloc != nil {
		na.mrAlloc.SetFlowActive(i, false)
	}
}

// markActive processes a flow (re)join.
func (na *nodeAgent) markActive(i model.FlowID) {
	na.inactive[i] = false
	na.alloc.SetFlowActive(i, true)
	if na.mrAlloc != nil {
		na.mrAlloc.SetFlowActive(i, true)
	}
}

// activeCount returns how many expected flows are still active.
func (na *nodeAgent) activeCount() int {
	n := 0
	for i := range na.expected {
		if !na.inactive[i] {
			n++
		}
	}
	return n
}

// runSync reacts to rate announcements in lock-step rounds: once all
// active expected flows have announced round t, it computes and broadcasts
// its round-t report.
func (na *nodeAgent) runSync() {
	defer close(na.done)
	pending := make(map[int]map[model.FlowID]bool)
	nextRound := 1

	for {
		m, ok := <-na.ep.Recv()
		if !ok {
			return
		}
		switch m.Kind {
		case ctrlKind:
			var cm ctrlMsg
			if err := transport.Decode(m, &cm); err != nil {
				continue
			}
			if cm.Stop {
				return
			}
		case rateKind:
			var rm rateMsg
			if err := transport.Decode(m, &rm); err != nil {
				continue
			}
			if !na.expected[rm.Flow] {
				continue
			}
			if !rm.Active {
				if !na.inactive[rm.Flow] {
					na.markInactive(rm.Flow)
				}
				// A departure may complete pending rounds.
			} else {
				if na.inactive[rm.Flow] {
					// Rejoin (only legal between Run calls, when no
					// rounds are pending; see Cluster.JoinFlow).
					na.markActive(rm.Flow)
				}
				na.rates[rm.Flow] = rm.Rate
				if pending[rm.Round] == nil {
					pending[rm.Round] = make(map[model.FlowID]bool)
				}
				pending[rm.Round][rm.Flow] = true
			}
			// Rounds must be processed in order: the price update is
			// sequential state. Complete rounds from nextRound upward
			// while each has a full active set.
			for na.activeCount() > 0 {
				got := 0
				for i := range pending[nextRound] {
					if !na.inactive[i] {
						got++
					}
				}
				if got < na.activeCount() {
					break
				}
				report := na.compute(nextRound)
				if err := na.broadcast(report); err != nil {
					return
				}
				delete(pending, nextRound)
				nextRound++
			}
		}
	}
}

// runAsync recomputes on a timer from the latest rates.
func (na *nodeAgent) runAsync() {
	defer close(na.done)
	ticker := time.NewTicker(na.tickEvery)
	defer ticker.Stop()
	round := 1
	for {
		select {
		case m, ok := <-na.ep.Recv():
			if !ok {
				return
			}
			switch m.Kind {
			case ctrlKind:
				var cm ctrlMsg
				if err := transport.Decode(m, &cm); err != nil {
					continue
				}
				if cm.Stop {
					return
				}
			case rateKind:
				var rm rateMsg
				if err := transport.Decode(m, &rm); err != nil {
					continue
				}
				if !na.expected[rm.Flow] {
					continue
				}
				if !rm.Active {
					na.markInactive(rm.Flow)
				} else {
					if na.inactive[rm.Flow] {
						na.markActive(rm.Flow)
					}
					na.rates[rm.Flow] = rm.Rate
				}
			}
		case <-ticker.C:
			report := na.compute(round)
			if err := na.broadcast(report); err != nil {
				return
			}
			round++
		}
	}
}
