// Overlay city: derive the optimization problem from an actual overlay
// topology, then apply the paper's Section 2.4 two-stage approximation.
//
// A metro ring of six broker nodes carries three feeds. Dissemination
// trees are computed by shortest-path routing, which fixes the link costs
// L_{l,i} and flow-node costs F_{b,i} automatically. Stage 1 optimizes
// with every flow routed to all of its subscriber nodes; stage 2 prunes
// the branches whose classes received no consumers and re-optimizes,
// recovering the relay capacity the dead branches were burning.
//
//	go run ./examples/overlaycity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/overlay"
	"repro/internal/utility"
)

func main() {
	// Six nodes in a ring, plus a chord 0-3 making two routes competitive.
	topo := overlay.Ring(6, 100_000)
	if _, _, err := topo.AddBidirectional(0, 3, 100_000); err != nil {
		log.Fatal(err)
	}

	flows := []overlay.FlowSpec{
		{
			// A news feed from node 0 with an expensive enrichment step
			// at every hop and subscribers on both sides of the ring.
			Name: "news", Source: 0, RateMin: 10, RateMax: 800,
			LinkCost: 1, NodeCost: 120,
			Classes: []overlay.ClassSpec{
				{Name: "news-premium", Node: 2, MaxConsumers: 1500, CostPerConsumer: 19, Utility: utility.NewLog(90)},
				{Name: "news-archive", Node: 5, MaxConsumers: 100, CostPerConsumer: 19, Utility: utility.NewLog(0.05)},
			},
		},
		{
			Name: "metrics", Source: 3, RateMin: 10, RateMax: 800,
			LinkCost: 1, NodeCost: 3,
			Classes: []overlay.ClassSpec{
				{Name: "metrics-ops", Node: 4, MaxConsumers: 1200, CostPerConsumer: 19, Utility: utility.NewLog(60)},
				{Name: "metrics-dash", Node: 5, MaxConsumers: 1200, CostPerConsumer: 19, Utility: utility.NewLog(40)},
			},
		},
		{
			Name: "alerts", Source: 1, RateMin: 10, RateMax: 800,
			LinkCost: 1, NodeCost: 3,
			Classes: []overlay.ClassSpec{
				{Name: "alerts-oncall", Node: 2, MaxConsumers: 200, CostPerConsumer: 19,
					Utility: utility.Hyperbolic{Scale: 900, HalfRate: 25}},
			},
		},
	}

	res, err := overlay.TwoStageSolve(topo, 60_000, flows, core.Config{Adaptive: true}, 800)
	if err != nil {
		log.Fatal(err)
	}

	describe := func(tag string, st overlay.StageResult) {
		ix := model.NewIndex(st.Problem)
		fmt.Printf("%s: utility %.0f\n", tag, st.Result.Utility)
		for i := range st.Problem.Flows {
			fid := model.FlowID(i)
			fmt.Printf("  %-8s rate %6.1f  tree: %d nodes, %d links\n",
				st.Problem.Flows[i].Name, st.Result.Allocation.Rates[i],
				len(ix.NodesByFlow(fid)), len(ix.LinksByFlow(fid)))
		}
		for j, c := range st.Problem.Classes {
			fmt.Printf("  %-14s %5d/%d admitted\n", c.Name, st.Result.Allocation.Consumers[j], c.MaxConsumers)
		}
	}

	fmt.Println("Stage 1: every flow routed to all of its subscriber nodes.")
	describe("stage 1", res.Stage1)
	fmt.Printf("\npruned: %d classes, %d flow-node visits, %d flow-link visits\n\n",
		res.PrunedClasses, res.PrunedNodeVisits, res.PrunedLinkVisits)
	fmt.Println("Stage 2: dead branches pruned, trees re-routed, re-optimized.")
	describe("stage 2", res.Stage2)
	fmt.Printf("\nutility gain from pruning: %+.0f (%+.2f%%)\n",
		res.UtilityGain, 100*res.UtilityGain/res.Stage1.Result.Utility)
}
