package overlay

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func TestAddLinkValidation(t *testing.T) {
	tp := NewTopology(3)
	if _, err := tp.AddLink(0, 3, 10); !errors.Is(err, ErrBadLink) {
		t.Errorf("out-of-range: %v", err)
	}
	if _, err := tp.AddLink(1, 1, 10); !errors.Is(err, ErrBadLink) {
		t.Errorf("self-loop: %v", err)
	}
	if _, err := tp.AddLink(0, 1, 0); !errors.Is(err, ErrBadLink) {
		t.Errorf("zero capacity: %v", err)
	}
	id, err := tp.AddLink(0, 1, 10)
	if err != nil || id != 0 {
		t.Errorf("first link: id=%d err=%v", id, err)
	}
}

func TestShortestPathLine(t *testing.T) {
	tp := Line(4, 100)
	path, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	links := tp.Links()
	at := model.NodeID(0)
	for _, li := range path {
		if links[li].From != at {
			t.Fatalf("discontinuous path at link %d", li)
		}
		at = links[li].To
	}
	if at != 3 {
		t.Fatalf("path ends at %d, want 3", at)
	}
}

func TestShortestPathRingPicksShortSide(t *testing.T) {
	tp := Ring(6, 100)
	path, err := tp.ShortestPath(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Around the ring the short way is 1 hop (5->0 reversed: 0->5).
	if len(path) != 1 {
		t.Errorf("path length = %d, want 1 (direct ring link)", len(path))
	}
}

func TestShortestPathSameNode(t *testing.T) {
	tp := Line(3, 10)
	path, err := tp.ShortestPath(1, 1)
	if err != nil || len(path) != 0 {
		t.Errorf("path = %v, err = %v", path, err)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	tp := NewTopology(3)
	_, _ = tp.AddLink(0, 1, 10) // node 2 unreachable
	if _, err := tp.ShortestPath(0, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("error = %v, want ErrNoPath", err)
	}
	if _, err := tp.ShortestPath(0, 9); !errors.Is(err, ErrNoPath) {
		t.Errorf("out-of-range error = %v, want ErrNoPath", err)
	}
}

func TestShortestPathDirectionality(t *testing.T) {
	tp := NewTopology(2)
	_, _ = tp.AddLink(0, 1, 10)
	if _, err := tp.ShortestPath(1, 0); !errors.Is(err, ErrNoPath) {
		t.Errorf("reverse path over unidirectional link: %v", err)
	}
}

func TestBuildTreeMergesSharedPrefix(t *testing.T) {
	// Star: source at spoke 1; subscribers at spokes 2 and 3. Both paths
	// cross the hub; the 1->0 link must appear once.
	tp := Star(4, 100)
	tree, err := tp.BuildTree(1, []model.NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Links) != 3 { // 1->0, 0->2, 0->3
		t.Errorf("tree links = %d, want 3", len(tree.Links))
	}
	if len(tree.Nodes) != 4 {
		t.Errorf("tree nodes = %v, want all 4", tree.Nodes)
	}
}

func TestBuildTreeSubscriberAtSource(t *testing.T) {
	tp := Line(3, 100)
	tree, err := tp.BuildTree(0, []model.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Links) != 0 || len(tree.Nodes) != 1 {
		t.Errorf("tree = %+v, want source only", tree)
	}
}

func buildSpec() []FlowSpec {
	return []FlowSpec{
		{
			Name: "f0", Source: 0, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "c0", Node: 2, MaxConsumers: 100, CostPerConsumer: 19, Utility: utility.NewLog(20)},
				{Name: "c1", Node: 3, MaxConsumers: 50, CostPerConsumer: 19, Utility: utility.NewLog(5)},
			},
		},
		{
			Name: "f1", Source: 3, RateMin: 10, RateMax: 1000,
			LinkCost: 2, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "c2", Node: 1, MaxConsumers: 200, CostPerConsumer: 19, Utility: utility.NewLog(40)},
			},
		},
	}
}

func TestBuildProblem(t *testing.T) {
	tp := Line(4, 5000)
	p, err := Build(tp, 9e5, buildSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(p); err != nil {
		t.Fatalf("built problem invalid: %v", err)
	}
	ix := model.NewIndex(p)

	// Flow 0 tree: 0->1->2, 0->1->2->3 merged = nodes {0,1,2,3}.
	if got := len(ix.NodesByFlow(0)); got != 4 {
		t.Errorf("flow 0 reaches %d nodes, want 4", got)
	}
	if got := len(ix.LinksByFlow(0)); got != 3 {
		t.Errorf("flow 0 uses %d links, want 3", got)
	}
	// Flow 1 tree: 3->2->1 = nodes {1,2,3}, 2 links.
	if got := len(ix.NodesByFlow(1)); got != 3 {
		t.Errorf("flow 1 reaches %d nodes, want 3", got)
	}
	if got := len(ix.LinksByFlow(1)); got != 2 {
		t.Errorf("flow 1 uses %d links, want 2", got)
	}
	// Unused links were pruned: line(4) has 6 directed links; flow 0 uses
	// 3 forward, flow 1 uses 2 backward; 5 total remain.
	if got := len(p.Links); got != 5 {
		t.Errorf("links after pruning = %d, want 5", got)
	}
	// Link costs follow the specs.
	for _, l := range p.Links {
		for fid, cost := range l.FlowCost {
			want := 1.0
			if fid == 1 {
				want = 2.0
			}
			if cost != want {
				t.Errorf("link %d flow %d cost %g, want %g", l.ID, fid, cost, want)
			}
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	tp := Line(3, 100)
	if _, err := Build(tp, 0, buildSpec()); !errors.Is(err, ErrBadBuild) {
		t.Errorf("zero capacity: %v", err)
	}
	if _, err := Build(tp, 100, nil); !errors.Is(err, ErrBadBuild) {
		t.Errorf("no flows: %v", err)
	}
	bad := buildSpec()
	bad[0].NodeCost = 0
	if _, err := Build(tp, 100, bad); !errors.Is(err, ErrBadBuild) {
		t.Errorf("zero node cost: %v", err)
	}
	// Unreachable subscriber.
	disconnected := NewTopology(4)
	if _, err := Build(disconnected, 100, buildSpec()); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable: %v", err)
	}
}

func TestBuiltProblemOptimizes(t *testing.T) {
	// End-to-end: an overlay-derived problem runs through LRGP and
	// produces a feasible allocation that respects the link constraints.
	tp := Ring(5, 800)
	specs := []FlowSpec{
		{
			Name: "news", Source: 0, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "a", Node: 2, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(20)},
				{Name: "b", Node: 3, MaxConsumers: 1000, CostPerConsumer: 19, Utility: utility.NewLog(80)},
			},
		},
		{
			Name: "quotes", Source: 1, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "c", Node: 4, MaxConsumers: 1500, CostPerConsumer: 19, Utility: utility.NewLog(50)},
			},
		},
	}
	p, err := Build(tp, 9e5, specs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(2000)
	if res.Utility <= 0 {
		t.Fatalf("utility = %g", res.Utility)
	}
	ix := e.Index()
	for _, l := range p.Links {
		if used := model.LinkUsage(p, ix, res.Allocation, l.ID); used > l.Capacity*1.05 {
			t.Errorf("link %d usage %g exceeds capacity %g by >5%%", l.ID, used, l.Capacity)
		}
	}
}
