package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	recs := []IterationRecord{
		{
			Iteration: 1, Utility: 1000.5, MaxNodeOverload: -2, MaxLinkOverload: 0.5,
			StageNanos: [3]int64{100, 200, 300},
			Rates:      []float64{10, 20}, Consumers: []int{3, 0, 7},
			NodePrices: []float64{0.1}, LinkPrices: []float64{0.001, 0.002},
			AdmissionDelta: 10,
		},
		{Iteration: 2, Utility: 1100, AdmissionDelta: 0, Converged: true},
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// One JSON object per line.
	if lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1; lines != 2 {
		t.Errorf("wrote %d lines, want 2:\n%s", lines, buf.String())
	}

	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	r0 := got[0]
	if r0.Iteration != 1 || r0.Utility != 1000.5 || r0.MaxNodeOverload != -2 ||
		r0.StageNanos != [3]int64{100, 200, 300} || r0.AdmissionDelta != 10 {
		t.Errorf("record 0 = %+v", r0)
	}
	if len(r0.Rates) != 2 || r0.Rates[1] != 20 || len(r0.Consumers) != 3 || r0.Consumers[2] != 7 {
		t.Errorf("record 0 allocation = %+v", r0)
	}
	if !got[1].Converged || got[1].Rates != nil {
		t.Errorf("record 1 = %+v", got[1])
	}

	if series := UtilitySeries(got); series[0] != 1000.5 || series[1] != 1100 {
		t.Errorf("utility series = %v", series)
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "{\"iter\":1,\"utility\":5}\n\n{\"iter\":2,\"utility\":6}\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Utility != 6 {
		t.Errorf("decoded %+v", got)
	}
}

func TestReadTraceReportsMalformedLine(t *testing.T) {
	in := "{\"iter\":1}\nnot json\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the line: %v", err)
	}
}
