// Quickstart: define a small event-infrastructure resource-allocation
// problem, run the LRGP optimizer, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func main() {
	// One node hosting two consumer classes of one message flow. The
	// node can spend 450,000 resource units per unit time; each message
	// costs 3 units to route plus 19 units per admitted consumer (the
	// paper's Gryphon measurements).
	problem := &model.Problem{
		Name: "quickstart",
		Flows: []model.Flow{
			{ID: 0, Name: "ticker", Source: 0, RateMin: 10, RateMax: 1000},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "S0", Capacity: 450_000, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			// 200 premium consumers, each valuing rate as 40*log(1+r).
			{ID: 0, Name: "premium", Flow: 0, Node: 0, MaxConsumers: 200,
				CostPerConsumer: 19, Utility: utility.NewLog(40)},
			// 3000 public consumers at rank 4.
			{ID: 1, Name: "public", Flow: 0, Node: 0, MaxConsumers: 3000,
				CostPerConsumer: 19, Utility: utility.NewLog(4)},
		},
	}

	engine, err := core.NewEngine(problem, core.Config{Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	result := engine.Solve(250)

	fmt.Printf("total utility: %.0f\n", result.Utility)
	fmt.Printf("converged:     %v (iteration %d)\n", result.Converged, result.ConvergedAt)
	fmt.Printf("ticker rate:   %.1f msg/s (allowed 10..1000)\n", result.Allocation.Rates[0])
	for _, c := range problem.Classes {
		fmt.Printf("%-8s admitted %d of %d consumers\n",
			c.Name, result.Allocation.Consumers[c.ID], c.MaxConsumers)
	}

	// The optimizer trades admission against rate: at the chosen rate,
	// admitting one more public consumer would cost 19*rate resource
	// units that earn more utility when spent on faster delivery to the
	// already-admitted consumers.
	if err := model.CheckFeasible(problem, engine.Index(), result.Allocation, 1e-9); err != nil {
		log.Fatalf("allocation infeasible: %v", err)
	}
	fmt.Println("allocation respects all capacity constraints")
}
