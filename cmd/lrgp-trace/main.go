// Command lrgp-trace analyzes a distributed-runtime flight-recorder
// event log (the JSONL written by dist.Cluster.WriteEvents, lrgp-broker
// -dist-events, or a stall post-mortem dump) and renders the merged
// cross-agent view: the per-round timeline, the straggler ranking
// against each communicating component's round frontier, the loss
// hotspots (rounds that needed resend chirps), and the effective
// staleness distribution actually observed at the agents' sends.
//
// Usage:
//
//	lrgp-trace -events events.jsonl [-top 10] [-csv]
//
// -events - reads the log from stdin. -top bounds the straggler and
// loss-hotspot tables; the round timeline and staleness distribution
// are always complete. -csv emits every table as CSV for downstream
// tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"repro/internal/dist"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer, stdin io.Reader) error {
	fs := flag.NewFlagSet("lrgp-trace", flag.ContinueOnError)
	var (
		events = fs.String("events", "", "flight-recorder event log (JSONL) to analyze; - reads stdin")
		top    = fs.Int("top", 10, "rows in the straggler and loss-hotspot tables")
		csv    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *events == "" {
		return fmt.Errorf("-events is required (path to a JSONL event log, or - for stdin)")
	}

	r := stdin
	if *events != "-" {
		f, err := os.Open(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	recs, err := dist.ReadEventLog(r)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("event log is empty")
	}
	a := dist.Analyze(recs)

	emit := func(t *trace.Table) {
		if *csv {
			t.RenderCSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "%d events from %d agents; %d rounds over %v; %d resend chirps, %d stall(s)\n\n",
		len(recs), len(a.Agents), a.MaxRound, time.Duration(a.SpanNanos).Round(time.Millisecond),
		a.TotalResends, a.Stalls)

	tl := trace.NewTable("round timeline", "round", "sends", "recvs", "resends", "start_ms", "window_ms")
	for _, rs := range a.Rounds {
		tl.Addf(rs.Round, rs.Sends, rs.Recvs, rs.Resends,
			fmt.Sprintf("%.2f", float64(rs.FirstNanos)/1e6),
			fmt.Sprintf("%.2f", float64(rs.LastNanos-rs.FirstNanos)/1e6))
	}
	emit(tl)

	st := trace.NewTable("stragglers (time spent >1 round behind the component frontier)",
		"agent", "rounds", "max_lag", "chirps", "behind_ms")
	for i, ag := range a.Agents {
		if i >= *top {
			break
		}
		st.Addf(ag.Agent, fmt.Sprintf("%d..%d", ag.FirstRound, ag.LastRound),
			ag.MaxLag, ag.Chirps, fmt.Sprintf("%.2f", float64(ag.BehindNanos)/1e6))
	}
	emit(st)

	// Loss hotspots: the rounds that needed the most repair traffic.
	// Chirps re-announce a round exactly when its frames failed to make
	// progress, so per-round resend counts localize where loss hurt.
	hot := make([]dist.RoundSummary, 0, len(a.Rounds))
	for _, rs := range a.Rounds {
		if rs.Resends > 0 {
			hot = append(hot, rs)
		}
	}
	slices.SortStableFunc(hot, func(x, y dist.RoundSummary) int { return y.Resends - x.Resends })
	ht := trace.NewTable("loss hotspots (rounds by resend chirps)", "round", "resends", "sends", "recvs")
	for i, rs := range hot {
		if i >= *top {
			break
		}
		ht.Addf(rs.Round, rs.Resends, rs.Sends, rs.Recvs)
	}
	if len(hot) == 0 {
		ht.Add("(none)", "0", "", "")
	}
	emit(ht)

	lags := make([]int, 0, len(a.StalenessDist))
	total := 0
	for lag, n := range a.StalenessDist {
		lags = append(lags, lag)
		total += n
	}
	slices.Sort(lags)
	sd := trace.NewTable("effective staleness (input lag observed at each send)", "lag_rounds", "sends", "share")
	for _, lag := range lags {
		n := a.StalenessDist[lag]
		sd.Addf(lag, n, fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total)))
	}
	emit(sd)
	return nil
}
