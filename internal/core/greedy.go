package core

import "repro/internal/model"

// GreedyPopulations runs the Algorithm 2 greedy consumer allocation at
// every node for the given flow rates, as a standalone primitive: it
// returns the admitted populations (indexed by ClassID) and the resulting
// total utility. Every flow is treated as active.
//
// This is the "Greedy Populations" half of LRGP exposed for reuse: the
// simulated-annealing baseline uses it to evaluate candidate rate vectors,
// and the admission-control ablation uses it to enact populations for
// externally chosen rates.
func GreedyPopulations(p *model.Problem, ix *model.Index, rates []float64) ([]int, float64) {
	consumers := make([]int, len(p.Classes))
	active := make([]bool, len(p.Flows))
	for i := range active {
		active[i] = true
	}
	for b := range p.Nodes {
		admitNode(p, ix, model.NodeID(b), rates, active, consumers, nil, nil, 0)
	}
	util := 0.0
	for j := range p.Classes {
		if n := consumers[j]; n > 0 {
			c := &p.Classes[j]
			util += float64(n) * c.Utility.Value(rates[c.Flow])
		}
	}
	return consumers, util
}
