// Command lrgp-anneal runs the centralized simulated-annealing baselines
// on a workload (Section 4.4 of the paper).
//
// Usage:
//
//	lrgp-anneal [-workload base|tiny|12f-6n|@file.json] [-shape log|...]
//	            [-steps 1000000] [-temps 5,10,50,100] [-seed 1]
//	            [-mode full|rates-greedy]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/anneal"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-anneal:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrgp-anneal", flag.ContinueOnError)
	var (
		workloadSpec = fs.String("workload", "base", "workload: base, tiny, <F>f-<N>n, or @file.json")
		shapeName    = fs.String("shape", "log", "utility shape: log, r0.25, r0.5, r0.75")
		steps        = fs.Int("steps", anneal.DefaultMaxSteps, "total annealing steps per start temperature")
		tempsFlag    = fs.String("temps", "5,10,50,100", "comma-separated start temperatures")
		seed         = fs.Int64("seed", 1, "random seed")
		mode         = fs.String("mode", "full", "state space: full (rates+populations) or rates-greedy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	shape, err := workload.ParseShape(*shapeName)
	if err != nil {
		return err
	}
	p, err := workload.Parse(*workloadSpec, shape)
	if err != nil {
		return err
	}
	temps, err := parseTemps(*tempsFlag)
	if err != nil {
		return err
	}

	cfg := anneal.Config{MaxSteps: *steps, Seed: *seed}
	var (
		res      anneal.Result
		bestTemp float64
	)
	switch *mode {
	case "full":
		res, bestTemp, err = anneal.SolveBestOf(p, cfg, temps)
	case "rates-greedy":
		res, bestTemp, err = anneal.SolveRatesGreedyBestOf(p, cfg, temps)
	default:
		return fmt.Errorf("unknown -mode %q (want full or rates-greedy)", *mode)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "workload      %s\n", p.Name)
	fmt.Fprintf(out, "mode          %s\n", *mode)
	fmt.Fprintf(out, "best utility  %.0f (start temp %g)\n", res.BestUtility, bestTemp)
	fmt.Fprintf(out, "final utility %.0f\n", res.FinalUtility)
	fmt.Fprintf(out, "steps         %d in %d rounds (%v, winning run)\n",
		res.Steps, res.Rounds, res.Runtime.Round(time.Millisecond))
	fmt.Fprintf(out, "accepted      %d (%d strict improvements)\n", res.Accepted, res.Improved)
	return nil
}

func parseTemps(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad temperature %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no temperatures in %q", s)
	}
	return out, nil
}
