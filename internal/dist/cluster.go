package dist

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Mode selects the execution style.
type Mode int

// Execution modes.
const (
	// Sync runs lock-step rounds (the paper's main formulation).
	Sync Mode = iota + 1
	// Async runs free-running agents on tickers with price averaging
	// (Section 3.5).
	Async
)

// Default async parameters.
const (
	DefaultTick        = 2 * time.Millisecond
	DefaultPriceWindow = 3
	// DefaultResend is the stall re-announce interval in bounded-staleness
	// mode: an agent blocked this long re-sends its freshest value so a
	// dropped frame cannot deadlock the cluster.
	DefaultResend = 10 * time.Millisecond
)

// Config tunes a Cluster.
type Config struct {
	// Core carries the LRGP algorithm parameters.
	Core core.Config
	// Mode selects Sync (default) or Async execution.
	Mode Mode
	// Tick is the agent recompute interval in Async mode (default
	// DefaultTick).
	Tick time.Duration
	// PriceWindow is how many recent prices a flow source averages per
	// resource (default DefaultPriceWindow). Barrier-synchronous runs
	// always use the latest price only; Async and bounded-staleness runs
	// average per Section 3.5.
	PriceWindow int
	// Multirate runs the multirate extension's algorithms at the agents
	// (per-class delivery rates); see internal/multirate.
	Multirate bool

	// Wire selects the message encoding (transport.WireJSON, the
	// compatible default, or transport.WireBinary for the compact
	// varint-framed codec). The trajectory is identical either way; only
	// the bytes on the wire differ.
	Wire transport.Wire
	// Batch co-locates agents onto gateway hosts: intra-host messages
	// skip the wire entirely and cross-host traffic is batched into one
	// frame per host pair per flush epoch (see gateway.go). In Async mode
	// later writes within an epoch coalesce over unsent earlier ones.
	Batch bool
	// Hosts is the number of gateway hosts when batching (default: one
	// per node). Nodes map to hosts in contiguous blocks; each flow agent
	// is co-located with its source node.
	Hosts int
	// FlushInterval is the gateway batch epoch (default
	// DefaultFlushInterval).
	FlushInterval time.Duration

	// Staleness bounds how many rounds behind an agent's inputs may be in
	// Sync mode (Section 3.5 averaging tolerates the skew). 0 keeps the
	// exact barrier schedule; K > 0 lets agents proceed on values up to K
	// rounds stale, which overlaps rounds and rides out message loss.
	Staleness int
	// Resend is the stall re-announce interval for bounded-staleness
	// runs (default DefaultResend when Staleness > 0; < 0 disables).
	Resend time.Duration

	// Telemetry, when non-nil, streams runtime metrics (round progress,
	// staleness, chirp repairs, gateway occupancy, stalls) into the
	// lrgp_dist_* families. All observations are atomic-only; a nil handle
	// costs a nil check per event.
	Telemetry *telemetry.DistMetrics
	// Record attaches a flight recorder to every agent: a fixed-size
	// lock-free ring of the last RecordSize events, dumpable via
	// WriteEvents or a stall post-mortem. Implied by Postmortem or
	// StallTimeout.
	Record bool
	// RecordSize is the per-agent ring capacity in events (default
	// DefaultRecordSize, rounded up to a power of two).
	RecordSize int
	// StallTimeout arms the stall detector (Sync mode): if rounds are
	// pending and the collector absorbs nothing for this long, the
	// cluster records a stall and dumps a post-mortem. 0 disables.
	StallTimeout time.Duration
	// Postmortem receives one JSONL dump of every agent's ring the first
	// time the cluster stalls (detector trip, Run timeout, or Close
	// timeout). Implies Record.
	Postmortem io.Writer
	// StopGrace bounds how long Close waits for agents to acknowledge
	// their Stop (default 5s). Under fault injection a Stop frame can be
	// lost, making the grace period the shutdown deadline.
	StopGrace time.Duration

	// staleLoop forces the bounded-staleness agent loop even at
	// Staleness == 0 (used by tests to prove the K=0 schedule is
	// bit-identical to the barrier loop).
	staleLoop bool
}

func (c Config) normalized() Config {
	c.Core = c.Core.WithDefaults()
	if c.Mode == 0 {
		c.Mode = Sync
	}
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.PriceWindow <= 0 {
		c.PriceWindow = DefaultPriceWindow
	}
	if c.Staleness < 0 {
		c.Staleness = 0
	}
	if c.Staleness > 0 {
		c.staleLoop = true
	}
	if c.Mode == Sync && c.Staleness == 0 {
		// Barrier schedule (and its bit-identical K=0 staleness variant):
		// latest price only.
		c.PriceWindow = 1
	}
	if c.staleLoop && c.Resend == 0 {
		c.Resend = DefaultResend
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.Postmortem != nil || c.StallTimeout > 0 {
		c.Record = true
	}
	if c.StopGrace <= 0 {
		c.StopGrace = 5 * time.Second
	}
	return c
}

// RoundStats is the collector's view of one completed synchronous round
// (or one asynchronous sample).
type RoundStats struct {
	// Round is the 1-based round number (sample number in Async mode).
	Round int
	// Utility is the global objective value.
	Utility float64
}

// Cluster wires one agent per flow and per node over a transport network
// and aggregates global state at a collector endpoint.
type Cluster struct {
	p   *model.Problem
	cfg Config

	flows    []*flowAgent
	nodes    []*nodeAgent
	ctrl     transport.Endpoint // for sending control messages
	coll     *collector
	gateways []*gateway
	route    map[string]string // agent name -> host endpoint (batch mode)

	// Observability: the shared monotonic epoch every recorder stamps
	// against (via the coarse shared clock), all rings (for snapshots),
	// and the cluster-level ring (detector events).
	epoch      time.Time
	clk        *recClock
	recs       []*recorder
	clusterRec *recorder
	stallQuit  chan struct{}
	stallDone  chan struct{}

	pmMu     sync.Mutex
	pmDumped bool

	mu      sync.Mutex
	started bool
	closed  bool
	ran     int // highest round requested in sync mode
}

// setWire applies the configured wire format to endpoints that support
// per-endpoint selection (the TCP transport; the in-memory transport
// passes structs through and has nothing to select).
func setWire(ep transport.Endpoint, w transport.Wire) {
	if ws, ok := ep.(transport.WireSelector); ok {
		ws.SetWire(w)
	}
}

// New validates the problem and attaches all agents to the network. Agents
// do not process rounds until Run (Sync) or Start (Async).
func New(p *model.Problem, cfg Config, net transport.Network) (*Cluster, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	cl := &Cluster{p: p, cfg: c, epoch: time.Now()}
	if c.Record {
		cl.clk = newRecClock(cl.epoch)
	}
	ok := false
	defer func() {
		if !ok && cl.clk != nil {
			cl.clk.stop()
		}
	}()
	cl.clusterRec = cl.newRec("cluster")

	collEP, err := net.Endpoint(collectorName)
	if err != nil {
		return nil, fmt.Errorf("dist: collector endpoint: %w", err)
	}
	setWire(collEP, c.Wire)
	// Only nodes that see at least one flow (directly or via an owned
	// link) ever compute and report; the collector must not wait for the
	// silent ones.
	reporting := 0
	for b := range p.Nodes {
		n := len(ix.FlowsByNode(model.NodeID(b)))
		for l := range p.Links {
			if p.Links[l].To == model.NodeID(b) {
				n += len(ix.FlowsByLink(model.LinkID(l)))
			}
		}
		if n > 0 {
			reporting++
		}
	}
	cl.coll = newCollector(p, collEP, reporting, c.Staleness == 0, c.Telemetry, cl.newRec(collectorName), cl.epoch)

	ctrlEP, err := net.Endpoint("cluster-ctrl")
	if err != nil {
		return nil, fmt.Errorf("dist: control endpoint: %w", err)
	}
	setWire(ctrlEP, c.Wire)
	cl.ctrl = ctrlEP

	// endpointFor hands each agent its attachment: a plain network
	// endpoint, or a port on its host's batching gateway.
	endpointFor := func(name string) (transport.Endpoint, error) {
		if !c.Batch {
			ep, err := net.Endpoint(name)
			if err != nil {
				return nil, err
			}
			setWire(ep, c.Wire)
			return ep, nil
		}
		gw := cl.gateways[hostIndex(cl.route[name], len(cl.gateways))]
		return gw.port(name), nil
	}

	if c.Batch {
		if err := cl.buildGateways(p, net, c); err != nil {
			return nil, err
		}
	}

	for i := range p.Flows {
		ep, err := endpointFor(flowName(model.FlowID(i)))
		if err != nil {
			return nil, fmt.Errorf("dist: flow %d endpoint: %w", i, err)
		}
		fa := newFlowAgent(p, ix, model.FlowID(i), ep, c)
		fa.rec = cl.newRec(flowName(model.FlowID(i)))
		fa.tel = c.Telemetry
		cl.flows = append(cl.flows, fa)
	}
	for b := range p.Nodes {
		ep, err := endpointFor(nodeName(model.NodeID(b)))
		if err != nil {
			return nil, fmt.Errorf("dist: node %d endpoint: %w", b, err)
		}
		na := newNodeAgent(p, ix, model.NodeID(b), ep, c)
		na.rec = cl.newRec(nodeName(model.NodeID(b)))
		na.tel = c.Telemetry
		cl.nodes = append(cl.nodes, na)
	}

	// Launch all agents; in Sync mode flow agents idle until a RunUntil
	// control arrives.
	go cl.coll.run()
	for _, fa := range cl.flows {
		fa := fa
		switch {
		case c.Mode != Sync:
			go fa.runAsync()
		case c.staleLoop:
			go fa.runStale()
		default:
			go fa.runSync()
		}
	}
	for _, na := range cl.nodes {
		na := na
		switch {
		case c.Mode != Sync:
			go na.runAsync()
		case c.staleLoop:
			go na.runStale()
		default:
			go na.runSync()
		}
	}
	if c.StallTimeout > 0 && c.Mode == Sync {
		cl.stallQuit = make(chan struct{})
		cl.stallDone = make(chan struct{})
		go cl.stallWatch()
	}
	cl.started = true
	ok = true
	return cl, nil
}

// newRec attaches one flight-recorder ring when recording is enabled and
// registers it for snapshots. Returns nil (a no-op recorder) otherwise.
func (cl *Cluster) newRec(name string) *recorder {
	if !cl.cfg.Record {
		return nil
	}
	r := newRecorder(name, cl.cfg.RecordSize, cl.clk)
	cl.recs = append(cl.recs, r)
	return r
}

// snapshot collects every ring's currently readable events.
func (cl *Cluster) snapshot() []Event {
	var buf []Event
	for _, r := range cl.recs {
		buf = r.events(buf)
	}
	return buf
}

// WriteEvents dumps every agent's flight-recorder ring as one merged JSONL
// event log (the lrgp-trace input format). Requires Config.Record. Safe to
// call while the cluster is running; in-flight writes are skipped, not
// torn.
func (cl *Cluster) WriteEvents(w io.Writer) error {
	if !cl.cfg.Record {
		return errors.New("dist: flight recording disabled (set Config.Record)")
	}
	return writeEvents(w, cl.snapshot())
}

// stallWatch polls the collector's progress counter and trips when rounds
// are pending but nothing has been absorbed for StallTimeout: the
// signature of the cluster deadlocking (lost Stop/announce frames, a hung
// agent) rather than merely running slowly.
func (cl *Cluster) stallWatch() {
	defer close(cl.stallDone)
	interval := cl.cfg.StallTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := cl.coll.progress.Load()
	frozen := time.Duration(0)
	for {
		select {
		case <-cl.stallQuit:
			return
		case <-ticker.C:
			p := cl.coll.progress.Load()
			if p != last {
				last = p
				frozen = 0
				continue
			}
			cl.mu.Lock()
			pending := int(cl.coll.lastFinal.Load()) < cl.ran
			cl.mu.Unlock()
			if !pending {
				frozen = 0
				continue
			}
			frozen += interval
			if frozen >= cl.cfg.StallTimeout {
				cl.postmortem()
				return
			}
		}
	}
}

// postmortem records a stall and, once per cluster, dumps every ring to
// the configured Postmortem writer. Reached from the stall detector, a Run
// timeout, and a Close timeout — whichever notices first wins.
func (cl *Cluster) postmortem() {
	cl.pmMu.Lock()
	defer cl.pmMu.Unlock()
	if cl.pmDumped {
		return
	}
	cl.pmDumped = true
	cl.cfg.Telemetry.ObserveStall()
	cl.clusterRec.record(EvStall, int(cl.coll.lastFinal.Load()), 0, 0)
	if cl.cfg.Postmortem != nil {
		_ = writeEvents(cl.cfg.Postmortem, cl.snapshot())
	}
}

// buildGateways creates the host endpoints and the agent->host routing
// table. Nodes map to hosts in contiguous blocks; flow agents co-locate
// with their source node, so source-local exchanges never touch the wire.
func (cl *Cluster) buildGateways(p *model.Problem, net transport.Network, c Config) error {
	hosts := c.Hosts
	if hosts <= 0 || hosts > len(p.Nodes) {
		hosts = len(p.Nodes)
	}
	cl.route = make(map[string]string, len(p.Flows)+len(p.Nodes)+1)
	for b := range p.Nodes {
		cl.route[nodeName(model.NodeID(b))] = hostName(b * hosts / len(p.Nodes))
	}
	for i := range p.Flows {
		cl.route[flowName(model.FlowID(i))] = cl.route[nodeName(p.Flows[i].Source)]
	}
	cl.route[collectorName] = collectorName
	for k := 0; k < hosts; k++ {
		ep, err := net.Endpoint(hostName(k))
		if err != nil {
			return fmt.Errorf("dist: host %d endpoint: %w", k, err)
		}
		setWire(ep, c.Wire)
		cl.gateways = append(cl.gateways, newGateway(ep, c.Wire, cl.route, c.Mode == Async, c.FlushInterval, c.Telemetry, cl.newRec(hostName(k))))
	}
	return nil
}

// hostIndex parses the numeric suffix of a host endpoint name ("host/7").
func hostIndex(host string, n int) int {
	k := 0
	for i := len("host/"); i < len(host); i++ {
		k = k*10 + int(host[i]-'0')
	}
	if k < 0 || k >= n {
		return 0
	}
	return k
}

// ErrMode is returned when an operation does not apply to the cluster's
// execution mode.
var ErrMode = errors.New("dist: operation not valid in this mode")

// sendCtrl encodes and delivers one control message to an agent (directly,
// or wrapped in a single-message batch frame to the agent's host gateway
// in batch mode). All errors surface to the caller.
func (cl *Cluster) sendCtrl(to string, body ctrlMsg) error {
	payload, err := encodeBody(cl.cfg.Wire, nil, body)
	if err != nil {
		return err
	}
	msg := transport.Message{From: cl.ctrl.Name(), To: to, Kind: ctrlKind, Payload: payload}
	if host, ok := cl.route[to]; ok && host != to {
		bp, err := encodeBatch(cl.cfg.Wire, []transport.Message{msg})
		if err != nil {
			return err
		}
		msg = transport.Message{From: cl.ctrl.Name(), To: host, Kind: batchKind, Payload: bp}
	}
	return cl.ctrl.Send(msg)
}

// Run advances a Sync cluster by `rounds` lock-step rounds and returns the
// per-round global utilities observed by the collector. In bounded-
// staleness mode over a lossy transport, rounds whose frames were lost are
// absent from the result.
func (cl *Cluster) Run(rounds int, timeout time.Duration) ([]RoundStats, error) {
	if cl.cfg.Mode != Sync {
		return nil, ErrMode
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cl.mu.Lock()
	from := cl.ran + 1
	cl.ran += rounds
	until := cl.ran
	cl.mu.Unlock()

	for _, fa := range cl.flows {
		if err := cl.sendCtrl(fa.ep.Name(), ctrlMsg{RunUntil: until}); err != nil {
			return nil, fmt.Errorf("dist: run ctrl: %w", err)
		}
	}
	if err := cl.coll.waitRound(until, timeout); err != nil {
		cl.postmortem()
		return nil, err
	}
	return cl.coll.rounds(from, until), nil
}

// Sample returns the collector's current view of global utility, for Async
// clusters.
func (cl *Cluster) Sample() RoundStats {
	return cl.coll.sample()
}

// RemoveFlow announces a flow's departure (the Figure 3 experiment). In
// Sync mode the departure takes effect at the flow's next scheduled round;
// callers must invoke it between Run calls. A removed flow's agent idles
// and can rejoin via JoinFlow.
func (cl *Cluster) RemoveFlow(i model.FlowID) error {
	return cl.sendCtrl(flowName(i), ctrlMsg{Leave: true})
}

// JoinFlow re-activates a previously removed flow: its agent re-announces
// itself and the node agents resume expecting it. Like RemoveFlow, it
// must be invoked between Run calls in Sync mode (when no rounds are
// pending anywhere).
func (cl *Cluster) JoinFlow(i model.FlowID) error {
	return cl.sendCtrl(flowName(i), ctrlMsg{Join: true})
}

// Allocation returns the collector's latest global allocation view.
func (cl *Cluster) Allocation() model.Allocation {
	return cl.coll.allocation()
}

// Close stops every agent. The underlying network is owned by the caller
// and is not closed. Control-send failures surface in the returned error
// (joined across agents), except fault-injected drops, which the lossy
// modes are designed to tolerate.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()

	if cl.stallQuit != nil {
		close(cl.stallQuit)
		<-cl.stallDone
	}

	var errs []error
	ctrlErr := func(err error) {
		if err != nil && !errors.Is(err, transport.ErrDropped) {
			errs = append(errs, err)
		}
	}
	stop := ctrlMsg{Stop: true}
	for _, fa := range cl.flows {
		ctrlErr(cl.sendCtrl(fa.ep.Name(), stop))
	}
	for _, na := range cl.nodes {
		ctrlErr(cl.sendCtrl(na.ep.Name(), stop))
	}
	ctrlErr(cl.sendCtrl(collectorName, stop))

	// One shared grace period across all agents. A Stop can be lost under
	// fault injection, so an agent may legitimately never stop; once the
	// deadline fires (time.After delivers exactly once) stop waiting on
	// the rest instead of selecting on the drained channel forever.
	deadline := time.After(cl.cfg.StopGrace)
	timedOut := false
	wait := func(done <-chan struct{}, what string) {
		if timedOut {
			return
		}
		select {
		case <-done:
		case <-deadline:
			timedOut = true
			errs = append(errs, fmt.Errorf("dist: timeout stopping %s", what))
		}
	}
	// On a send failure the agents may never see their stop; give them the
	// grace period only when the control plane worked.
	if len(errs) == 0 {
		for _, fa := range cl.flows {
			wait(fa.done, "flow agents")
		}
		for _, na := range cl.nodes {
			wait(na.done, "node agents")
		}
		wait(cl.coll.done, "collector")
	}
	if timedOut {
		// An agent that never saw its Stop is the same failure shape as a
		// mid-run stall: dump the rings while they still show what
		// everyone was (not) doing.
		cl.postmortem()
	}
	for _, gw := range cl.gateways {
		gw.close()
	}
	if cl.clk != nil {
		cl.clk.stop()
	}
	return errors.Join(errs...)
}
