package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestRunBaseWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-iters", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"workload  6f-3n-log(1+r)", "utility", "feasible  yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithAllocAndChart(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "tiny", "-iters", "50", "-alloc", "-chart", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== allocation ==") {
		t.Errorf("missing allocation table:\n%s", s)
	}
	if !strings.Contains(s, "iteration,utility") {
		t.Errorf("missing CSV header:\n%s", s)
	}
}

// TestRunMetroSmallWorkload: the metro presets resolve by name, and the
// componentized pod structure puts the sharded engine on the fused
// schedule (visible in the -verbose snapshot summary).
func TestRunMetroSmallWorkload(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "metro-small", "-iters", "40", "-workers", "4", "-verbose"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "workload  metro-24p-240f-1200n (240 flows, 1200 nodes, 9600 classes)") {
		t.Errorf("missing metro workload line:\n%.400s", s)
	}
	if !strings.Contains(s, "(fused)") {
		t.Errorf("snapshot summary not on the fused schedule:\n%.400s", s)
	}
}

// TestRunFullStepIdentical: -full-step disables dirty-set skipping but
// must not change a single byte of the report (the incremental engine is
// bit-identical by construction).
func TestRunFullStepIdentical(t *testing.T) {
	var inc, full bytes.Buffer
	if err := run([]string{"-iters", "100"}, &inc); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-iters", "100", "-full-step"}, &full); err != nil {
		t.Fatal(err)
	}
	if inc.String() != full.String() {
		t.Errorf("-full-step changed the output:\n--- incremental ---\n%s--- full ---\n%s",
			inc.String(), full.String())
	}
}

func TestRunFixedGamma(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-adaptive=false", "-gamma", "0.05", "-iters", "60"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultirateFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-multirate", "-iters", "100", "-alloc"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "(multirate;") || !strings.Contains(s, "== multirate allocation ==") {
		t.Errorf("multirate output malformed:\n%s", s)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-iters", "60", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Workload  string  `json:"workload"`
		Utility   float64 `json:"utility"`
		Converged bool    `json:"converged"`
		Snapshot  struct {
			NodeUsage []float64 `json:"NodeUsage"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if got.Workload != "6f-3n-log(1+r)" || got.Utility <= 0 {
		t.Errorf("decoded %+v", got)
	}
	if len(got.Snapshot.NodeUsage) != 3 {
		t.Errorf("snapshot nodes = %d", len(got.Snapshot.NodeUsage))
	}
}

func TestRunVerboseDiagnostics(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-iters", "60", "-verbose"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== node diagnostics ==") {
		t.Errorf("missing diagnostics:\n%s", out.String())
	}
	// The Snapshot.String() summary line precedes the tables.
	sumRe := regexp.MustCompile(`snapshot  iter=\d+ utility=[\d.]+ .*workers=\d+ \((serial|sharded)\)`)
	if !sumRe.MatchString(out.String()) {
		t.Errorf("missing snapshot summary line:\n%s", out.String())
	}
}

// TestRunTelemetryAddr: with -telemetry-addr the sim prints the resolved
// listen address before solving and tears the server down on return.
// (Mid-run scraping is covered by the lrgp-broker in-process smoke and
// the telemetry package's own HTTP tests.)
func TestRunTelemetryAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "tiny", "-iters", "30", "-telemetry-addr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`telemetry  listening on http://([0-9.:]+)`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("missing telemetry listen line:\n%s", out.String())
	}
	if _, err := http.Get("http://" + m[1] + "/metrics"); err == nil {
		t.Error("telemetry server still reachable after run returned")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-shape", "r0.9"}, &out); err == nil {
		t.Error("unknown shape accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
