package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

// rateProblem builds a one-node problem whose single flow is consumed by
// the given classes (all attached at node 0), for exercising rateSolver.
func rateProblem(rmin, rmax float64, utilities ...utility.Function) (*model.Problem, *model.Index) {
	p := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: rmin, RateMax: rmax}},
		Nodes: []model.Node{{
			ID: 0, Capacity: 1e9,
			FlowCost: map[model.FlowID]float64{0: 1},
		}},
	}
	for k, u := range utilities {
		p.Classes = append(p.Classes, model.Class{
			ID: model.ClassID(k), Flow: 0, Node: 0,
			MaxConsumers: 1000, CostPerConsumer: 1, Utility: u,
		})
	}
	return p, model.NewIndex(p)
}

func TestRateSolverZeroConsumers(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20))
	rs := newRateSolver(p, ix, 0)
	if got := rs.solve([]int{0}, 5); got != 10 {
		t.Errorf("rate with no consumers = %g, want rateMin", got)
	}
}

func TestRateSolverZeroPrice(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20))
	rs := newRateSolver(p, ix, 0)
	if got := rs.solve([]int{3}, 0); got != 1000 {
		t.Errorf("rate with zero price = %g, want rateMax", got)
	}
}

func TestRateSolverLogClosedForm(t *testing.T) {
	// Stationarity: n*scale/(1+r) = P => r = n*scale/P - 1.
	p, ix := rateProblem(10, 1000, utility.NewLog(20))
	rs := newRateSolver(p, ix, 0)
	if rs.family != famLog {
		t.Fatalf("family = %v, want famLog", rs.family)
	}
	got := rs.solve([]int{5}, 0.5)
	want := 5*20/0.5 - 1 // = 199
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("rate = %g, want %g", got, want)
	}
}

func TestRateSolverLogSaturation(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20))
	rs := newRateSolver(p, ix, 0)
	// Very high price pins the rate at rateMin.
	if got := rs.solve([]int{1}, 100); got != 10 {
		t.Errorf("rate under high price = %g, want 10", got)
	}
	// Very low price pins the rate at rateMax.
	if got := rs.solve([]int{1}, 1e-6); got != 1000 {
		t.Errorf("rate under low price = %g, want 1000", got)
	}
}

func TestRateSolverPowerClosedForm(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewPower(40, 0.5))
	rs := newRateSolver(p, ix, 0)
	if rs.family != famPower {
		t.Fatalf("family = %v, want famPower", rs.family)
	}
	// n*scale*k*r^(k-1) = P with n=2: 2*40*0.5*r^-0.5 = 4 => r = 100.
	got := rs.solve([]int{2}, 4)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("rate = %g, want 100", got)
	}
}

func TestRateSolverMixedFallsBackToBisection(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20), utility.NewPower(10, 0.5))
	rs := newRateSolver(p, ix, 0)
	if rs.family != famGeneral {
		t.Fatalf("family = %v, want famGeneral", rs.family)
	}
	consumers := []int{2, 3}
	price := 1.5
	got := rs.solve(consumers, price)
	// The solution satisfies the stationarity condition.
	if resid := rs.marginal(consumers, got) - price; math.Abs(resid) > 1e-6 {
		t.Errorf("stationarity residual = %g at r=%g", resid, got)
	}
}

func TestRateSolverMixedLogShiftsFallBack(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20), utility.Log{Scale: 5, Shift: 3})
	rs := newRateSolver(p, ix, 0)
	if rs.family != famGeneral {
		t.Fatalf("family = %v, want famGeneral (different shifts)", rs.family)
	}
}

func TestRateSolverMixedExponentsFallBack(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewPower(20, 0.25), utility.NewPower(5, 0.75))
	rs := newRateSolver(p, ix, 0)
	if rs.family != famGeneral {
		t.Fatalf("family = %v, want famGeneral (different exponents)", rs.family)
	}
}

func TestRateSolverClosedFormAgreesWithBisection(t *testing.T) {
	// The same log aggregate solved both ways must agree.
	pFast, ixFast := rateProblem(10, 1000, utility.NewLog(20), utility.NewLog(5))
	fast := newRateSolver(pFast, ixFast, 0)
	if fast.family != famLog {
		t.Fatal("fast path not selected")
	}
	slow := &rateSolver{
		flow:      pFast.Flows[0],
		classes:   fast.classes,
		utilities: fast.utilities,
		family:    famGeneral,
	}
	for _, price := range []float64{0.01, 0.1, 0.9, 3, 17} {
		consumers := []int{4, 9}
		a := fast.solve(consumers, price)
		b := slow.solve(consumers, price)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Errorf("price %g: closed form %g vs bisection %g", price, a, b)
		}
	}
}

func TestRateSolverMultiClassAggregation(t *testing.T) {
	// Two log classes: (n0*s0 + n1*s1)/(1+r) = P.
	p, ix := rateProblem(1, 1e6, utility.NewLog(20), utility.NewLog(5))
	rs := newRateSolver(p, ix, 0)
	consumers := []int{10, 20}
	price := 0.02
	want := (10*20.0+20*5.0)/price - 1 // = 14999
	if got := rs.solve(consumers, price); math.Abs(got-want) > 1e-6 {
		t.Errorf("rate = %g, want %g", got, want)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("clamp(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
}
