// Package repro is the public API of the LRGP library: a from-scratch
// implementation of "Utility Optimization for Event-Driven Distributed
// Infrastructures" (Lumezanu, Bhola, Astley; ICDCS 2006).
//
// The package re-exports the library's stable surface from its internal
// packages. Quickstart:
//
//	problem := &repro.Problem{
//	    Flows: []repro.Flow{{ID: 0, Source: 0, RateMin: 10, RateMax: 1000}},
//	    Nodes: []repro.Node{{ID: 0, Capacity: 450_000,
//	        FlowCost: map[repro.FlowID]float64{0: 3}}},
//	    Classes: []repro.Class{
//	        {ID: 0, Flow: 0, Node: 0, MaxConsumers: 200,
//	            CostPerConsumer: 19, Utility: repro.NewLogUtility(40)},
//	    },
//	}
//	engine, err := repro.NewEngine(problem, repro.Config{Adaptive: true})
//	result := engine.Solve(250)
//
// Layered on top of the optimizer:
//
//   - NewBroker / NewController: a pub/sub enactment substrate with token-
//     bucket rate limits and consumer admission control;
//   - NewCluster: the optimizer as distributed message-passing agents over
//     in-memory or TCP transports;
//   - NewMultirateEngine: the multirate extension (per-class thinned
//     delivery rates);
//   - AnnealSolve / BruteForceSolve: baselines and ground truth;
//   - BaseWorkload / ScaledWorkload: the paper's evaluation workloads.
//
// See README.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro

import (
	"repro/internal/anneal"
	"repro/internal/broker"
	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/overlay"
	"repro/internal/transport"
	"repro/internal/utility"
	"repro/internal/workload"
)

// Problem-model types (see internal/model).
type (
	// Problem is a complete optimization-problem instance.
	Problem = model.Problem
	// Flow is a message flow with rate bounds and a source node.
	Flow = model.Flow
	// Class is a set of identical consumers of one flow at one node.
	Class = model.Class
	// Node is an overlay node with finite capacity.
	Node = model.Node
	// Link is a unidirectional overlay link with finite capacity.
	Link = model.Link
	// Allocation is a candidate solution (rates + populations).
	Allocation = model.Allocation
	// Index precomputes the problem's lookup maps.
	Index = model.Index

	// FlowID, ClassID, NodeID and LinkID identify problem entities.
	FlowID  = model.FlowID
	ClassID = model.ClassID
	NodeID  = model.NodeID
	LinkID  = model.LinkID
)

// Optimizer types (see internal/core).
type (
	// Engine runs synchronous LRGP iterations.
	Engine = core.Engine
	// Config tunes the engine (stepsizes, adaptive gamma, prices).
	Config = core.Config
	// Result summarizes a Solve run.
	Result = core.Result
	// StepResult summarizes one iteration.
	StepResult = core.StepResult
)

// Utility types (see internal/utility).
type (
	// UtilityFunction is a strictly concave increasing utility of rate.
	UtilityFunction = utility.Function
	// UtilitySpec is the serializable description of a utility.
	UtilitySpec = utility.Spec
)

// Enactment types (see internal/broker).
type (
	// Broker is the pub/sub substrate that enacts allocations.
	Broker = broker.Broker
	// BrokerController closes the measure-optimize-enact loop.
	BrokerController = broker.Controller
	// Message is one published event.
	Message = broker.Message
	// Filter is a content-based subscription predicate.
	Filter = broker.Filter
	// Transform mutates messages en route to a class.
	Transform = broker.Transform
)

// Distributed-runtime types (see internal/dist and internal/transport).
type (
	// Cluster runs LRGP as message-passing agents.
	Cluster = dist.Cluster
	// ClusterConfig tunes a cluster (mode, tick, price window).
	ClusterConfig = dist.Config
	// Network provides named message endpoints.
	Network = transport.Network
)

// Baseline types (see internal/anneal and internal/bruteforce).
type (
	// AnnealConfig tunes the simulated-annealing baselines.
	AnnealConfig = anneal.Config
	// AnnealResult reports a completed annealing run.
	AnnealResult = anneal.Result
)

// Multirate-extension types (see internal/multirate).
type (
	// MultirateEngine optimizes with per-class delivery rates.
	MultirateEngine = multirate.Engine
	// MultirateAllocation holds source rates, deliveries, populations.
	MultirateAllocation = multirate.Allocation
)

// Overlay types (see internal/overlay).
type (
	// Topology is a directed overlay graph.
	Topology = overlay.Topology
	// FlowSpec declares a flow to route over a topology.
	FlowSpec = overlay.FlowSpec
	// ClassSpec declares a consumer class of a FlowSpec.
	ClassSpec = overlay.ClassSpec
)

// Constructors and entry points.
var (
	// NewEngine builds the synchronous LRGP engine.
	NewEngine = core.NewEngine
	// GreedyPopulations runs only the admission half of LRGP.
	GreedyPopulations = core.GreedyPopulations

	// Validate checks a problem's structural well-formedness.
	Validate = model.Validate
	// NewIndex precomputes a problem's lookup maps.
	NewIndex = model.NewIndex
	// TotalUtility evaluates the objective for an allocation.
	TotalUtility = model.TotalUtility
	// CheckFeasible verifies every constraint of Section 2.
	CheckFeasible = model.CheckFeasible

	// NewLogUtility returns the paper's rank*log(1+r).
	NewLogUtility = utility.NewLog
	// NewPowerUtility returns the paper's rank*r^k.
	NewPowerUtility = utility.NewPower

	// NewBroker builds the enactment substrate.
	NewBroker = broker.New
	// NewBrokerController wires a re-optimization loop around a broker.
	NewBrokerController = broker.NewController

	// NewCluster attaches distributed LRGP agents to a network.
	NewCluster = dist.New
	// NewMemoryNetwork returns an in-process transport.
	NewMemoryNetwork = transport.NewMemory
	// NewTCPNetwork returns a loopback TCP transport.
	NewTCPNetwork = transport.NewTCP

	// NewMultirateEngine builds the multirate extension's engine.
	NewMultirateEngine = multirate.NewEngine
	// EnactMultirate applies a multirate allocation to a broker.
	EnactMultirate = multirate.Enact

	// AnnealSolve runs the full-state simulated-annealing baseline.
	AnnealSolve = anneal.Solve
	// AnnealSolveRatesGreedy runs the rates-only + greedy variant.
	AnnealSolveRatesGreedy = anneal.SolveRatesGreedy
	// BruteForceSolve exhaustively solves tiny instances.
	BruteForceSolve = bruteforce.Solve

	// BaseWorkload returns the paper's Table 1 workload.
	BaseWorkload = workload.Base
	// ScaledWorkload returns a Section 4.3 scaled variant.
	ScaledWorkload = workload.Scaled
	// ParseWorkload resolves a workload specifier (see workload.Parse).
	ParseWorkload = workload.Parse
	// TradeDataWorkload, LatestPriceWorkload and HeterogeneousWorkload
	// are the Section 1.1 scenario presets.
	TradeDataWorkload     = workload.TradeData
	LatestPriceWorkload   = workload.LatestPrice
	HeterogeneousWorkload = workload.Heterogeneous

	// BuildOverlayProblem routes flows over a topology into a Problem.
	BuildOverlayProblem = overlay.Build
	// TwoStageSolve runs the Section 2.4 two-stage approximation.
	TwoStageSolve = overlay.TwoStageSolve
)

// Distributed execution modes.
const (
	// SyncMode runs lock-step rounds.
	SyncMode = dist.Sync
	// AsyncMode runs free-running agents with price averaging.
	AsyncMode = dist.Async
)
