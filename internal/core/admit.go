package core

import (
	"slices"

	"repro/internal/model"
)

// Consumer allocation (Algorithm 2, step 2; Section 3.2). Given the current
// flow rates, each node admits consumers greedily in decreasing order of
// benefit-cost ratio
//
//	BC_j = U_j(r_flowMap(j)) / (G_{b,j} * r_flowMap(j)),
//
// one consumer at a time, until either the class is fully admitted
// (n_j = n_j^max) or the node capacity c_b is reached. The budget available
// for consumers is the capacity left after the consumer-independent
// flow-node costs sum_i F_{b,i} r_i. If those costs alone exceed c_b, every
// class at the node stays at n_j = 0.

// admitResult reports one node's greedy allocation outcome.
type admitResult struct {
	// used is used_b(t): total node resource consumed after allocation,
	// including flow-node costs.
	used float64
	// bestUnsatisfied is BC(b,t) of Equation 11: the highest benefit-cost
	// ratio among classes with n_j < n_j^max, or 0 when every class is
	// fully admitted (relaxing the constraint buys nothing).
	bestUnsatisfied float64
	// popChanged reports whether any population actually changed value,
	// tracked only when the caller passes a popEpoch slice.
	popChanged bool
}

// classBC pairs a class with its benefit-cost ratio for sorting.
type classBC struct {
	id model.ClassID
	bc float64
	// unitCost is G_{b,j} * r: node resource per admitted consumer.
	unitCost float64
	// value is U_j(r), cached for the utility bookkeeping.
	value float64
}

// admitNode runs the greedy allocation for node b, writing the resulting
// populations into consumers (indexed by ClassID). active reports whether a
// flow participates this iteration; classes of inactive flows are forced to
// zero and ignored.
//
// When popEpoch is non-nil, every population write that changes a value
// also records epoch in popEpoch[class] and sets popChanged on the result;
// the incremental engine uses this to seed the next iteration's dirty set.
// Callers outside the engine (greedy seeding, the distributed node agent)
// pass nil, 0 to disable tracking.
func admitNode(
	p *model.Problem,
	ix *model.Index,
	b model.NodeID,
	rates []float64,
	active []bool,
	consumers []int,
	scratch []classBC,
	popEpoch []int,
	epoch int,
) admitResult {
	node := &p.Nodes[b]
	res := admitResult{}

	flowUse := 0.0
	costs := ix.FlowCostsByNode(b)
	for k, i := range ix.FlowsByNode(b) {
		if active[i] {
			flowUse += costs[k] * rates[i]
		}
	}

	// Rank classes by benefit-cost ratio (Equation 10). The ratio does
	// not depend on n_j, so a single sort implements the paper's
	// "increase the best class until full, then move on" loop.
	ranked := scratch[:0]
	for _, cid := range ix.ClassesByNode(b) {
		c := &p.Classes[cid]
		if !active[c.Flow] {
			setPop(consumers, popEpoch, epoch, cid, 0, &res)
			continue
		}
		r := rates[c.Flow]
		value := c.Utility.Value(r)
		if value <= 0 {
			// A consumer with non-positive utility at this rate would
			// spend node resource without increasing the objective
			// (possible for utilities that start negative or at zero
			// when r is pinned very low); never admit it.
			setPop(consumers, popEpoch, epoch, cid, 0, &res)
			continue
		}
		unit := c.CostPerConsumer * r
		ranked = append(ranked, classBC{
			id:       cid,
			bc:       value / unit,
			unitCost: unit,
			value:    value,
		})
	}
	// slices.SortFunc avoids sort.Slice's interface boxing and reflection
	// swaps in this per-node, per-iteration sort. The id tie-break makes
	// the order total, so the (unstable) sort is still deterministic.
	slices.SortFunc(ranked, func(x, y classBC) int {
		switch {
		case x.bc > y.bc:
			return -1
		case x.bc < y.bc:
			return 1
		case x.id < y.id:
			return -1
		case x.id > y.id:
			return 1
		default:
			return 0
		}
	})

	budget := node.Capacity - flowUse
	used := flowUse
	best := 0.0
	for _, cb := range ranked {
		c := &p.Classes[cb.id]
		n := 0
		if budget > 0 {
			n = int(budget / cb.unitCost)
			if n > c.MaxConsumers {
				n = c.MaxConsumers
			}
			// budget/unitCost can round up across an integer boundary
			// (e.g. 3 - 2^-52 dividing to exactly 3.0), admitting a
			// consumer whose true cost overshoots the remaining budget;
			// step back until the packing really fits.
			for n > 0 && float64(n)*cb.unitCost > budget {
				n--
			}
		}
		setPop(consumers, popEpoch, epoch, cb.id, n, &res)
		cost := float64(n) * cb.unitCost
		budget -= cost
		used += cost
		if n < c.MaxConsumers && cb.bc > best {
			best = cb.bc
		}
	}
	res.used, res.bestUnsatisfied = used, best
	return res
}

// setPop writes consumers[cid] = n, recording the change epoch when the
// value moves and tracking is enabled. Skipping the write on equal values
// is what makes the epoch meaningful: a re-admission that reproduces the
// same population leaves the class clean.
func setPop(consumers, popEpoch []int, epoch int, cid model.ClassID, n int, res *admitResult) {
	if consumers[cid] == n {
		return
	}
	consumers[cid] = n
	if popEpoch != nil {
		popEpoch[cid] = epoch
		res.popChanged = true
	}
}
