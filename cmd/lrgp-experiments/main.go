// Command lrgp-experiments regenerates the paper's tables and figures
// (and this repository's extension experiments); see EXPERIMENTS.md for
// the recorded outputs.
//
// Usage:
//
//	lrgp-experiments [-run all|fig1|fig2|fig3|fig4|table2|table3|async|ablation|links|prune|overhead|gamma|multirate|sweep|scaling|churn]
//	                 [-iters 250] [-sa-steps 1000000] [-seed 1] [-workers 0]
//	                 [-workload metro-small] [-csv] [-chart] [-trace-out run.jsonl]
//	                 [-topo-nodes 10000] [-fail-every 400] [-fail-kind link|node] [-short]
//
// The churn-specific flags size the X11 rolling-failure experiment:
// -topo-nodes the overlay, -fail-every the iteration budget between
// failures, -fail-kind what dies. -short shrinks X11 to a CI-sized run.
//
// -trace-out records a structured JSONL iteration trace (one
// telemetry.IterationRecord per line: rates, consumer populations,
// prices, stage wall times, admission churn) of a traced base-workload
// run, in addition to whatever -run selects; use `-run none -trace-out
// run.jsonl` to record only the trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrgp-experiments", flag.ContinueOnError)
	var (
		runSpec  = fs.String("run", "all", "experiments to run (comma-separated): all, fig1, fig2, fig3, fig4, table2, table3, async, ablation, links, prune, overhead, gamma, multirate, sweep, scaling, churn")
		iters    = fs.Int("iters", 250, "LRGP iterations per run")
		saSteps  = fs.Int("sa-steps", 1_000_000, "full-state annealing steps per start temperature")
		seed     = fs.Int64("seed", 1, "random seed for stochastic baselines")
		workers  = fs.Int("workers", 0, "engine Step workers (0 = GOMAXPROCS, 1 = serial); results are identical for every count")
		wlSpec   = fs.String("workload", "", "workload for the scaling experiment: metro, metro-small, base, <F>f-<N>n, @file.json (default metro-small)")
		csv      = fs.Bool("csv", false, "emit figures/tables as CSV instead of text")
		markdown = fs.Bool("markdown", false, "emit tables as GitHub-flavored Markdown")
		chart    = fs.Bool("chart", true, "draw ASCII charts for figures")
		traceOut = fs.String("trace-out", "", "record a JSONL iteration trace of a base-workload run to this file (use with -run none to record only the trace)")

		topoNodes = fs.Int("topo-nodes", 0, "X11 churn: overlay size (default 10000)")
		failEvery = fs.Int("fail-every", 0, "X11 churn: iteration budget between failure events (default 400)")
		failKind  = fs.String("fail-kind", "link", "X11 churn: what fails, link or node")
		short     = fs.Bool("short", false, "shrink the churn experiment to a CI-sized run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{Iterations: *iters, SASteps: *saSteps, Seed: *seed, Workers: *workers, Workload: *wlSpec}

	if *traceOut != "" {
		if err := recordTrace(out, opts, *traceOut); err != nil {
			return err
		}
	}

	want := make(map[string]bool)
	for _, name := range strings.Split(*runSpec, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	emitFig := func(fig *trace.SeriesSet) {
		if *csv {
			fig.RenderCSV(out)
		} else if *chart {
			fig.RenderASCII(out, 100, 20)
		} else {
			fmt.Fprintf(out, "== %s == (%d iterations; use -chart or -csv for data)\n", fig.Title, len(fig.X))
		}
		fmt.Fprintln(out)
	}
	emitTable := func(t *trace.Table) {
		switch {
		case *csv:
			fmt.Fprintf(out, "# %s\n", t.Title)
			t.RenderCSV(out)
		case *markdown:
			t.RenderMarkdown(out)
		default:
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	if selected("fig1") {
		fig, err := experiments.Figure1Damping(opts)
		if err != nil {
			return err
		}
		emitFig(fig)
	}
	if selected("fig2") {
		fig, err := experiments.Figure2AdaptiveGamma(opts)
		if err != nil {
			return err
		}
		emitFig(fig)
	}
	if selected("fig3") {
		res, err := experiments.Figure3Recovery(opts)
		if err != nil {
			return err
		}
		emitFig(res.Fig)
		for _, name := range res.Fig.Names {
			fmt.Fprintf(out, "  recovery (%s): %d iterations to re-enter the 0.5%% band\n", name, res.RecoveryIters[name])
		}
		fmt.Fprintln(out)
	}
	if selected("fig4") {
		fig, err := experiments.Figure4PowerUtility(opts)
		if err != nil {
			return err
		}
		emitFig(fig)
	}
	if selected("table2") {
		rows, err := experiments.Table2Scalability(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderComparison(
			"Table 2: LRGP vs simulated annealing as the system grows", rows))
	}
	if selected("table3") {
		rows, err := experiments.Table3UtilityShapes(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderComparison(
			"Table 3: convergence and quality as the utility shape varies", rows))
	}
	if selected("async") {
		res, err := experiments.AsyncExperiment(opts, time.Minute)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== X1: asynchronous LRGP (Section 3.5, message-passing agents) ==")
		fmt.Fprintf(out, "  sync utility    %.0f\n", res.SyncUtility)
		fmt.Fprintf(out, "  async utility   %.0f (rel err %.4f)\n", res.AsyncUtility, res.RelativeError)
		fmt.Fprintf(out, "  converged       %v after %v (%d samples)\n\n",
			res.Converged, res.ConvergedAfter.Round(time.Millisecond), res.Samples)
	}
	if selected("ablation") {
		rows, err := experiments.AblationAdmission(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderAblation(rows))
	}
	if selected("multirate") {
		rows, err := experiments.MultirateExperiment(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== X7: multirate dissemination (the paper's deferred future work) ==")
		for _, r := range rows {
			fmt.Fprintf(out, "  %-16s single-rate %9.0f | multirate %9.0f | gain %+6.2f%%",
				r.Workload, r.SingleUtility, r.MultiUtility, r.GainPct)
			if r.FastDelivery > 0 {
				fmt.Fprintf(out, " | delivery split %g vs %.1f msg/s", r.FastDelivery, r.SlowDelivery)
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out)
	}
	if selected("gamma") {
		rows, err := experiments.GammaControllerAblation(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderGammaAblation(rows))
	}
	if selected("prune") {
		res, err := experiments.PruneExperiment(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== X4: two-stage path pruning (Section 2.4, stage 2) ==")
		fmt.Fprintf(out, "  stage 1 utility   %.0f (%d classes)\n",
			res.Stage1.Result.Utility, len(res.Stage1.Problem.Classes))
		fmt.Fprintf(out, "  pruned            %d classes, %d node visits, %d link visits\n",
			res.PrunedClasses, res.PrunedNodeVisits, res.PrunedLinkVisits)
		fmt.Fprintf(out, "  stage 2 utility   %.0f (gain %+.0f, %+.2f%%)\n\n",
			res.Stage2.Result.Utility, res.UtilityGain, 100*res.UtilityGain/res.Stage1.Result.Utility)
	}
	if selected("sweep") {
		res, err := experiments.WarmStartSweep(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderSweep(res))
		fmt.Fprintf(out, "  warm start saved %d of %d cold iterations (%.0f%%)\n\n",
			res.ColdIters-res.WarmIters, res.ColdIters,
			100*float64(res.ColdIters-res.WarmIters)/float64(res.ColdIters))
	}
	if selected("scaling") {
		res, err := experiments.ScalingExperiment(opts)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderScaling(res))
	}
	if selected("overhead") {
		rows, err := experiments.OverheadExperiment(opts, 0)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderOverhead(rows))
		rt, err := experiments.DistRuntimeExperiment(opts, 0)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderDistRuntime(rt))
	}
	if selected("churn") {
		if *failKind != "link" && *failKind != "node" {
			return fmt.Errorf("-fail-kind %q: want link or node", *failKind)
		}
		cc := experiments.ChurnConfig{
			TopoNodes: *topoNodes,
			FailEvery: *failEvery,
			FailKind:  *failKind,
		}
		if *short {
			// CI-sized: a few hundred nodes, few events, short budgets.
			if cc.TopoNodes == 0 {
				cc.TopoNodes = 400
			}
			if cc.FailEvery == 0 {
				cc.FailEvery = 200
			}
			cc.Flows = 8
			cc.Events = 4
			cc.ColdBudget = 1200
		}
		res, err := experiments.ChurnExperiment(opts, cc)
		if err != nil {
			return err
		}
		emitTable(experiments.RenderChurn(res))
		fmt.Fprintf(out, "  base solve: %d iterations to utility %.0f; churn handled %.1fx faster warm than cold\n\n",
			res.BaseIters, res.BaseUtility, res.Speedup)
	}
	if selected("links") {
		res, err := experiments.LinkBottleneckExperiment(opts, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== X3: link bottlenecks (Equations 4 and 13 exercised) ==")
		fmt.Fprintf(out, "  link caps         %.0f%% of rateMax per flow\n", res.Utilization*100)
		fmt.Fprintf(out, "  utility           %.0f (unconstrained baseline %.0f)\n", res.Utility, res.BaselineNoLink)
		fmt.Fprintf(out, "  max link usage    %.1f%% of capacity\n", res.MaxLinkUsage*100)
		if res.Converged {
			fmt.Fprintf(out, "  converged at      %d\n\n", res.ConvergedAt)
		} else {
			fmt.Fprintf(out, "  converged         no\n\n")
		}
	}
	return nil
}

// recordTrace runs the traced base-workload solve and writes its JSONL
// iteration trace to path.
func recordTrace(out io.Writer, opts experiments.Options, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw := telemetry.NewTraceWriter(f)
	res, err := experiments.TracedRun(opts, tw)
	if err != nil {
		f.Close()
		return err
	}
	if err := tw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	converged := "not converged"
	if res.Converged {
		converged = fmt.Sprintf("converged at %d", res.ConvergedAt)
	}
	fmt.Fprintf(out, "trace: wrote %d iteration records to %s (utility %.0f, %s)\n\n",
		res.Iterations, path, res.Utility, converged)
	return nil
}
