package utility_test

import (
	"fmt"

	"repro/internal/utility"
)

// ExampleLog shows the paper's logarithmic utility family.
func ExampleLog() {
	u := utility.NewLog(20) // rank 20
	fmt.Printf("U(10) = %.2f\n", u.Value(10))
	fmt.Printf("U'(10) = %.3f\n", u.Deriv(10))
	fmt.Printf("name: %s\n", u.Name())
	// Output:
	// U(10) = 47.96
	// U'(10) = 1.818
	// name: 20*log(1+r)
}

// ExampleSpec_Build round-trips a serializable utility description.
func ExampleSpec_Build() {
	spec := utility.Spec{Kind: utility.KindPower, Scale: 40, Exponent: 0.75}
	fn, err := spec.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s at r=16: %.1f\n", fn.Name(), fn.Value(16))
	// Output:
	// 40*r^0.75 at r=16: 320.0
}

// ExampleDerivInverter solves the stationarity condition U'(r) = price in
// closed form.
func ExampleDerivInverter() {
	u := utility.NewLog(20)
	price := 0.5
	r := u.InvDeriv(price)
	fmt.Printf("U'(%g) = %.3f\n", r, u.Deriv(r))
	// Output:
	// U'(39) = 0.500
}
