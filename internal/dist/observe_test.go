package dist

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// syncWriter serializes writes so a stall-detector dump (watcher
// goroutine) cannot race the test's read.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

// TestWriteEventsRoundTrip runs a recorded cluster and checks the merged
// event log reconstructs the run: every agent present, the round timeline
// reaching the requested round, sane staleness distribution.
func TestWriteEventsRoundTrip(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	reg := telemetry.NewRegistry()
	cl, err := New(p, Config{
		Core:      core.Config{Adaptive: true},
		Staleness: 1,
		Telemetry: telemetry.NewDistMetrics(reg),
		Record:    true,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const rounds = 30
	stats, err := cl.Run(rounds, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no rounds completed")
	}

	var buf bytes.Buffer
	if err := cl.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(recs)
	if a.MaxRound < rounds {
		t.Errorf("event log reaches round %d, want >= %d", a.MaxRound, rounds)
	}
	if want := len(p.Flows) + len(p.Nodes); len(a.Agents) != want {
		t.Errorf("%d agents in log, want %d", len(a.Agents), want)
	}
	if a.Stalls != 0 {
		t.Errorf("%d stalls recorded in a healthy run", a.Stalls)
	}
	total := 0
	for lag, n := range a.StalenessDist {
		if lag < 0 || lag > 2 {
			t.Errorf("observed input lag %d outside [0, K+1]", lag)
		}
		total += n
	}
	if total == 0 {
		t.Error("empty staleness distribution")
	}
	if got := int(cl.cfg.Telemetry.RoundsFinalized.Value()); got < rounds {
		t.Errorf("telemetry finalized %d rounds, want >= %d", got, rounds)
	}
}

// TestWriteEventsRequiresRecord: without Config.Record the dump must fail
// loudly instead of returning an empty log.
func TestWriteEventsRequiresRecord(t *testing.T) {
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WriteEvents(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteEvents succeeded with recording disabled")
	}
}

// TestStallPostmortemOnLostStop recreates the fault-dropped-Stop hang: the
// control plane is partitioned away before Close, every Stop frame is
// lost, the agents never exit, and Close times out. The cluster must
// notice and dump a post-mortem naming the stall instead of leaving a
// silent hung-test mystery.
func TestStallPostmortemOnLostStop(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	reg := telemetry.NewRegistry()
	tel := telemetry.NewDistMetrics(reg)
	pm := &syncWriter{}
	cl, err := New(p, Config{
		Core:       core.Config{Adaptive: true},
		Staleness:  1,
		Telemetry:  tel,
		Postmortem: pm,
		StopGrace:  200 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(10, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Cut the control endpoint off: Stop frames now vanish exactly like
	// fault-injected drops (ErrDropped is tolerated by Close's error
	// filter), so no agent ever sees its Stop.
	net.SetPartition("cluster-ctrl", 9)
	err = cl.Close()
	if err == nil || !strings.Contains(err.Error(), "timeout stopping") {
		t.Fatalf("Close error = %v, want stop timeout", err)
	}
	net.ClearPartitions()

	recs, perr := ReadEventLog(bytes.NewReader(pm.bytes()))
	if perr != nil {
		t.Fatal(perr)
	}
	if len(recs) == 0 {
		t.Fatal("post-mortem dump is empty")
	}
	a := Analyze(recs)
	if a.Stalls != 1 {
		t.Errorf("post-mortem records %d stalls, want 1", a.Stalls)
	}
	if a.MaxRound < 10 {
		t.Errorf("post-mortem reaches round %d, want >= 10", a.MaxRound)
	}
	if tel.Stalls.Value() != 1 {
		t.Errorf("stall counter = %d, want 1", tel.Stalls.Value())
	}
}

// TestStallDetectorTripsMidRun arms the detector, then makes the
// transport drop every frame mid-run: the collector freezes with rounds
// pending, the watcher trips before the Run timeout, and the post-mortem
// shows the agents chirping into the void.
func TestStallDetectorTripsMidRun(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	net.SetDropExempt("cluster-ctrl")
	reg := telemetry.NewRegistry()
	tel := telemetry.NewDistMetrics(reg)
	pm := &syncWriter{}
	cl, err := New(p, Config{
		Core:         core.Config{Adaptive: true},
		Staleness:    1,
		Resend:       2 * time.Millisecond,
		Telemetry:    tel,
		Postmortem:   pm,
		StallTimeout: 100 * time.Millisecond,
		StopGrace:    200 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(10, time.Minute); err != nil {
		t.Fatal(err)
	}

	net.SetDropRate(1.0, 3) // every agent frame now vanishes
	_, runErr := cl.Run(10, 2*time.Second)
	if runErr == nil {
		t.Fatal("Run succeeded with a fully lossy transport")
	}
	if tel.Stalls.Value() != 1 {
		t.Errorf("stall counter = %d, want 1", tel.Stalls.Value())
	}
	recs, perr := ReadEventLog(bytes.NewReader(pm.bytes()))
	if perr != nil {
		t.Fatal(perr)
	}
	a := Analyze(recs)
	if a.Stalls != 1 {
		t.Errorf("post-mortem records %d stalls, want 1", a.Stalls)
	}
	if a.TotalResends == 0 {
		t.Error("no chirps in the post-mortem of a lossy stall")
	}

	net.SetDropRate(0, 0)
	cl.Close()
}

// TestTraceAnalyzeThousandAgents is the end-to-end acceptance run: 1008
// agents under 10% loss, one flow agent partitioned off mid-run and
// healed. The merged flight-recorder log must rank exactly that agent as
// the top straggler and attribute repair traffic to the stall window.
func TestTraceAnalyzeThousandAgents(t *testing.T) {
	p := workload.Scaled(workload.Config{FlowCopies: 112})
	if agents := len(p.Flows) + len(p.Nodes); agents < 1000 {
		t.Fatalf("workload too small: %d agents", agents)
	}
	const straggler = 5

	net := transport.NewMemory()
	defer net.Close()
	net.SetDropRate(0.10, 1)
	net.SetDropExempt("cluster-ctrl")

	cl, err := New(p, Config{
		Core:       core.Config{Adaptive: true},
		Wire:       transport.WireBinary,
		Staleness:  2,
		Resend:     5 * time.Millisecond,
		Record:     true,
		RecordSize: 1024,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Run in the background; the RunUntil controls are all sent before
	// waitRound blocks, so fault injection after a short delay cannot
	// lose them.
	type runResult struct {
		stats []RoundStats
		err   error
	}
	resCh := make(chan runResult, 1)
	go func() {
		stats, err := cl.Run(60, 4*time.Minute)
		resCh <- runResult{stats, err}
	}()

	time.Sleep(50 * time.Millisecond)
	net.SetPartition(flowName(straggler), 9)
	time.Sleep(400 * time.Millisecond)
	net.ClearPartitions()

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.stats) == 0 {
		t.Fatal("no rounds completed")
	}

	var buf bytes.Buffer
	if err := cl.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(recs)
	if a.MaxRound < 60 {
		t.Errorf("event log reaches round %d, want >= 60", a.MaxRound)
	}
	if len(a.Agents) < 1000 {
		t.Errorf("%d agents in log, want >= 1000", len(a.Agents))
	}
	// Ranking identity needs real-time cadence: under the race detector
	// the cluster runs ~50x slower, so scheduler starvation legitimately
	// puts arbitrary agents further behind than the 400ms partition puts
	// flow/5. The race build keeps the run for 1008-agent recorder
	// coverage and skips only the identity assertions.
	if !raceEnabled {
		top := a.Agents[0]
		if top.Agent != flowName(straggler) {
			t.Errorf("top straggler = %s (behind %dns, maxlag %d), want %s",
				top.Agent, top.BehindNanos, top.MaxLag, flowName(straggler))
		}
		if top.BehindNanos == 0 {
			t.Error("straggler BehindNanos = 0")
		}
		if top.MaxLag < 2 {
			t.Errorf("straggler MaxLag = %d, want >= 2", top.MaxLag)
		}
	}
	if a.TotalResends == 0 {
		t.Error("no resend chirps recorded under loss + partition")
	}
	lossRounds := 0
	for _, rs := range a.Rounds {
		if rs.Resends > 0 {
			lossRounds++
		}
	}
	if lossRounds == 0 {
		t.Error("no per-round loss (resend) attribution")
	}
}
