package workload

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestParseNamed(t *testing.T) {
	tests := []struct {
		spec        string
		wantFlows   int
		wantNodes   int
		wantClasses int
	}{
		{"base", 6, 3, 20},
		{"", 6, 3, 20},
		{"tiny", 2, 2, 4},
		{"6f-3n", 6, 3, 20},
		{"12f-6n", 12, 6, 40},
		{"24f-12n", 24, 12, 80},
		{"6f-6n", 6, 6, 40},
		{"6f-24n", 6, 24, 160},
		{"12f-12n", 12, 12, 80},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			p, err := Parse(tt.spec, ShapeLog)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Flows) != tt.wantFlows || len(p.Nodes) != tt.wantNodes || len(p.Classes) != tt.wantClasses {
				t.Errorf("got %d flows, %d nodes, %d classes; want %d/%d/%d",
					len(p.Flows), len(p.Nodes), len(p.Classes),
					tt.wantFlows, tt.wantNodes, tt.wantClasses)
			}
			if err := model.Validate(p); err != nil {
				t.Errorf("invalid: %v", err)
			}
		})
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{"nope", "7f-3n", "6f-4n", "0f-0n", "-6f-3n", "12f-9n"} {
		if _, err := Parse(spec, ShapeLog); !errors.Is(err, ErrUnknownWorkload) {
			t.Errorf("Parse(%q) error = %v, want ErrUnknownWorkload", spec, err)
		}
	}
}

func TestParseShapePropagates(t *testing.T) {
	p, err := Parse("base", ShapePow75)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "6f-3n-r^0.75" {
		t.Errorf("name = %q", p.Name)
	}
	// Zero shape defaults to log.
	p, err = Parse("base", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "6f-3n-log(1+r)" {
		t.Errorf("default-shape name = %q", p.Name)
	}
}

func TestParseShapeNames(t *testing.T) {
	tests := []struct {
		name string
		want Shape
	}{
		{"", ShapeLog}, {"log", ShapeLog},
		{"r0.25", ShapePow25}, {"r0.5", ShapePow50}, {"r0.75", ShapePow75},
	}
	for _, tt := range tests {
		got, err := ParseShape(tt.name)
		if err != nil || got != tt.want {
			t.Errorf("ParseShape(%q) = %v, %v", tt.name, got, err)
		}
	}
	if _, err := ParseShape("r0.9"); err == nil {
		t.Error("ParseShape accepted unknown shape")
	}
}

func TestParseJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")

	data, err := json.Marshal(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := Parse("@"+path, ShapeLog)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny-2f-2n" || len(p.Classes) != 4 {
		t.Errorf("loaded %q with %d classes", p.Name, len(p.Classes))
	}
}

func TestParseJSONFileErrors(t *testing.T) {
	if _, err := Parse("@/does/not/exist.json", ShapeLog); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("@"+bad, ShapeLog); err == nil {
		t.Error("truncated JSON accepted")
	}
	// Structurally valid JSON, semantically invalid problem.
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"flows":[],"nodes":[],"classes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("@"+invalid, ShapeLog); err == nil {
		t.Error("invalid problem accepted")
	}
}
