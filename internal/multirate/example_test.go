package multirate_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/utility"
)

// Example shows the multirate extension splitting delivery rates: a tiny
// premium class keeps the full stream while a large crowd receives a
// thinned one.
func Example() {
	problem := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 10, RateMax: 1000}},
		Nodes: []model.Node{{ID: 0, Capacity: 1e6, FlowCost: map[model.FlowID]float64{0: 3}}},
		Classes: []model.Class{
			{ID: 0, Name: "fast", Flow: 0, Node: 0, MaxConsumers: 20,
				CostPerConsumer: 19, Utility: utility.NewPower(100, 0.5)},
			{ID: 1, Name: "slow", Flow: 0, Node: 0, MaxConsumers: 10000,
				CostPerConsumer: 19, Utility: utility.NewLog(4)},
		},
	}
	e, err := multirate.NewEngine(problem, core.Config{Adaptive: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	res := e.Solve(600)
	a := res.Allocation
	fmt.Printf("source %g, fast delivery %g, slow delivery %g\n",
		a.SourceRates[0], a.Delivery[0], a.Delivery[1])
	// Output:
	// source 1000, fast delivery 1000, slow delivery 10
}
