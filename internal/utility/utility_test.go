package utility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleRates are representative rates across the paper's [10, 1000] range
// plus boundary-ish values.
var sampleRates = []float64{0.5, 1, 10, 55, 100, 400, 999, 1000, 5000}

func allFunctions() []Function {
	return []Function{
		NewLog(1),
		NewLog(20),
		Log{Scale: 5, Shift: 3},
		NewPower(1, 0.25),
		NewPower(15, 0.5),
		NewPower(100, 0.75),
		LinearCap{Scale: 2, Knee: 1000},
		LinearCap{Scale: 40, Knee: 500},
		Hyperbolic{Scale: 10, HalfRate: 100},
		Hyperbolic{Scale: 80, HalfRate: 15},
	}
}

func TestLogValue(t *testing.T) {
	u := NewLog(20)
	if got, want := u.Value(0), 0.0; got != want {
		t.Errorf("Value(0) = %g, want %g", got, want)
	}
	if got, want := u.Value(math.E-1), 20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Value(e-1) = %g, want %g", got, want)
	}
}

func TestPowerValue(t *testing.T) {
	u := NewPower(3, 0.5)
	if got, want := u.Value(16), 12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Value(16) = %g, want %g", got, want)
	}
}

func TestHyperbolicValue(t *testing.T) {
	u := Hyperbolic{Scale: 10, HalfRate: 100}
	if got := u.Value(100); got != 5 {
		t.Errorf("Value(halfRate) = %g, want half of scale", got)
	}
	if got := u.Value(0); got != 0 {
		t.Errorf("Value(0) = %g, want 0", got)
	}
	if got := u.Value(1e12); math.Abs(got-10) > 1e-6 {
		t.Errorf("Value(inf-ish) = %g, want ~scale", got)
	}
}

func TestHyperbolicInvDerivClamps(t *testing.T) {
	u := Hyperbolic{Scale: 10, HalfRate: 100}
	// U'(0) = Scale/HalfRate = 0.1; a larger y has no positive solution.
	if got := u.InvDeriv(0.2); got != 0 {
		t.Errorf("InvDeriv(0.2) = %g, want 0", got)
	}
}

func TestLinearCapValue(t *testing.T) {
	u := LinearCap{Scale: 2, Knee: 100}
	// Saturates at Scale*Knee.
	if got := u.Value(1e9); math.Abs(got-200) > 1e-6 {
		t.Errorf("Value(1e9) = %g, want ~200", got)
	}
	if got := u.Value(0); got != 0 {
		t.Errorf("Value(0) = %g, want 0", got)
	}
}

// TestDerivMatchesFiniteDifference cross-checks every analytic derivative
// against a central finite difference.
func TestDerivMatchesFiniteDifference(t *testing.T) {
	for _, fn := range allFunctions() {
		for _, r := range sampleRates {
			h := 1e-6 * (1 + r)
			numeric := (fn.Value(r+h) - fn.Value(r-h)) / (2 * h)
			analytic := fn.Deriv(r)
			if rel := math.Abs(numeric-analytic) / math.Max(1e-12, math.Abs(analytic)); rel > 1e-5 {
				t.Errorf("%s: Deriv(%g) = %g, finite difference %g (rel err %g)",
					fn.Name(), r, analytic, numeric, rel)
			}
		}
	}
}

// TestIncreasing verifies all utilities are strictly increasing on r > 0.
func TestIncreasing(t *testing.T) {
	for _, fn := range allFunctions() {
		prev := fn.Value(sampleRates[0])
		for _, r := range sampleRates[1:] {
			v := fn.Value(r)
			if v <= prev {
				t.Errorf("%s: Value(%g) = %g not greater than previous %g", fn.Name(), r, v, prev)
			}
			prev = v
		}
	}
}

// TestDerivDecreasing verifies strict concavity via decreasing derivative.
func TestDerivDecreasing(t *testing.T) {
	for _, fn := range allFunctions() {
		prev := fn.Deriv(sampleRates[0])
		for _, r := range sampleRates[1:] {
			d := fn.Deriv(r)
			if d >= prev {
				t.Errorf("%s: Deriv(%g) = %g not less than previous %g", fn.Name(), r, d, prev)
			}
			if d <= 0 {
				t.Errorf("%s: Deriv(%g) = %g not positive", fn.Name(), r, d)
			}
			prev = d
		}
	}
}

// TestInvDerivRoundTrip verifies InvDeriv(Deriv(r)) == r for each
// DerivInverter implementation.
func TestInvDerivRoundTrip(t *testing.T) {
	for _, fn := range allFunctions() {
		inv, ok := fn.(DerivInverter)
		if !ok {
			t.Fatalf("%s does not implement DerivInverter", fn.Name())
		}
		for _, r := range sampleRates {
			got := inv.InvDeriv(fn.Deriv(r))
			if rel := math.Abs(got-r) / r; rel > 1e-9 {
				t.Errorf("%s: InvDeriv(Deriv(%g)) = %g (rel err %g)", fn.Name(), r, got, rel)
			}
		}
	}
}

func TestInvDerivBelowZeroClamps(t *testing.T) {
	u := NewLog(10)
	// U'(0) = 10; a larger y has no positive solution, expect 0.
	if got := u.InvDeriv(11); got != 0 {
		t.Errorf("InvDeriv(11) = %g, want 0", got)
	}
	lc := LinearCap{Scale: 2, Knee: 50}
	if got := lc.InvDeriv(3); got != 0 {
		t.Errorf("LinearCap.InvDeriv above Scale = %g, want 0", got)
	}
}

// TestConcavityProperty is a property-based check of midpoint concavity:
// U((a+b)/2) >= (U(a)+U(b))/2 for all a, b > 0.
func TestConcavityProperty(t *testing.T) {
	for _, fn := range allFunctions() {
		fn := fn
		prop := func(x, y uint16) bool {
			a := 0.01 + float64(x)/10
			b := 0.01 + float64(y)/10
			mid := fn.Value((a + b) / 2)
			chord := (fn.Value(a) + fn.Value(b)) / 2
			return mid >= chord-1e-9*math.Abs(chord)
		}
		if err := quick.Check(prop, &quick.Config{
			MaxCount: 500,
			Rand:     rand.New(rand.NewSource(1)),
		}); err != nil {
			t.Errorf("%s: concavity violated: %v", fn.Name(), err)
		}
	}
}

func TestName(t *testing.T) {
	tests := []struct {
		fn   Function
		want string
	}{
		{NewLog(20), "20*log(1+r)"},
		{Log{Scale: 2, Shift: 3}, "2*log(3+r)"},
		{NewPower(5, 0.75), "5*r^0.75"},
	}
	for _, tt := range tests {
		if got := tt.fn.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
