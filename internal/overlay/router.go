package overlay

import (
	"fmt"
	"slices"

	"repro/internal/model"
)

// Router owns the routing state of one problem instance: the topology, the
// flow specs, every flow's dissemination tree, and the model.Problem whose
// L/F coefficients mirror those trees. Unlike Build, the problem keeps a
// slot for every topology link (link IDs are topology indices, dead or
// unused links included), so its shape survives re-routing and the engine
// can warm-restart across failures via Engine.ResetRouting.
//
// A Router maintains reverse indexes (link → flows, node → flows routed
// through it), so RepairLink/RepairNode re-route exactly the flows whose
// trees touch the failed element; every other tree — and the problem
// coefficients behind it — stays byte-identical, slices shared. Changes
// accumulate into a model.RoutingDelta collected by TakeDelta.
//
// A Router is single-goroutine, like the Engine it feeds. The returned
// *model.Problem is live: repairs mutate its cost maps in place, and the
// caller must not Step an engine bound to it between a repair and the
// ResetRouting that republishes the index.
type Router struct {
	topo  *Topology
	flows []FlowSpec // deep-copied specs; Classes slices owned by the Router
	prob  *model.Problem
	trees []Tree
	sc    *Scratch

	// Reverse indexes over tree membership, each list ascending:
	// flowsByLink[li] / flowsByNode[b] are the flows whose tree contains
	// the element. These are routing indexes — a node hosting only a
	// flow's subscribers appears exactly when the tree reaches it.
	flowsByLink [][]int32
	flowsByNode [][]int32

	// classOff[fi] is the global ID of flow fi's first class (classes are
	// laid out flow-major, matching assembleProblem).
	classOff []int
	// pruned[j] marks classes zeroed by PruneDeadSubscribers; their nodes
	// no longer anchor the flow's tree.
	pruned []bool

	// Accumulated routing delta since the last TakeDelta.
	flowMark   []bool
	nodeMark   []bool
	linkMark   []bool
	dirtyFlows []model.FlowID
	dirtyNodes []model.NodeID
	dirtyLinks []model.LinkID
}

// NewRouter routes every flow over t and returns a Router owning the
// resulting problem. nodeCaps gives each node's capacity (len must equal
// t.NodeCount()). The problem retains all topology links; Validate runs on
// the result.
func NewRouter(t *Topology, nodeCaps []float64, flows []FlowSpec) (*Router, error) {
	if len(nodeCaps) != t.NodeCount() {
		return nil, fmt.Errorf("%w: %d capacities for %d nodes", ErrBadBuild, len(nodeCaps), t.NodeCount())
	}
	for b, c := range nodeCaps {
		if c <= 0 {
			return nil, fmt.Errorf("%w: node %d capacity %g", ErrBadBuild, b, c)
		}
	}
	if err := checkFlowSpecs(flows); err != nil {
		return nil, err
	}
	sc := NewScratch(t)
	trees, err := routeTrees(t, sc, flows)
	if err != nil {
		return nil, err
	}

	specs := make([]FlowSpec, len(flows))
	classOff := make([]int, len(flows))
	nClasses := 0
	for fi, fs := range flows {
		specs[fi] = fs
		specs[fi].Classes = slices.Clone(fs.Classes)
		classOff[fi] = nClasses
		nClasses += len(fs.Classes)
	}

	p := assembleProblem(t, nodeCaps, flows, trees)
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("overlay: routed problem invalid: %w", err)
	}

	r := &Router{
		topo:        t,
		flows:       specs,
		prob:        p,
		trees:       trees,
		sc:          sc,
		flowsByLink: make([][]int32, t.LinkCount()),
		flowsByNode: make([][]int32, t.NodeCount()),
		classOff:    classOff,
		pruned:      make([]bool, nClasses),
		flowMark:    make([]bool, len(flows)),
		nodeMark:    make([]bool, t.NodeCount()),
		linkMark:    make([]bool, t.LinkCount()),
	}
	for fi := range trees {
		r.indexTree(model.FlowID(fi), trees[fi])
	}
	return r, nil
}

// Problem returns the Router's live problem. Repairs mutate it in place.
func (r *Router) Problem() *model.Problem { return r.prob }

// Topology returns the topology the Router routes over.
func (r *Router) Topology() *Topology { return r.topo }

// Tree returns flow i's current dissemination tree. The slices are owned
// by the Router and must not be mutated.
func (r *Router) Tree(i model.FlowID) Tree { return r.trees[i] }

// FlowsThroughLink returns the flows whose trees use link li, ascending.
// The slice is owned by the Router.
func (r *Router) FlowsThroughLink(li int) []int32 { return r.flowsByLink[li] }

// FlowsThroughNode returns the flows whose trees touch node b, ascending.
// The slice is owned by the Router.
func (r *Router) FlowsThroughNode(b model.NodeID) []int32 { return r.flowsByNode[b] }

// TakeDelta returns the routing delta accumulated since the previous call
// and resets it. Feed the result to Engine.ResetRouting (or
// model.Index.RefreshRouting) to republish the mutated problem.
func (r *Router) TakeDelta() model.RoutingDelta {
	d := model.RoutingDelta{
		Flows: r.dirtyFlows,
		Nodes: r.dirtyNodes,
		Links: r.dirtyLinks,
	}
	for _, i := range d.Flows {
		r.flowMark[i] = false
	}
	for _, b := range d.Nodes {
		r.nodeMark[b] = false
	}
	for _, l := range d.Links {
		r.linkMark[l] = false
	}
	r.dirtyFlows, r.dirtyNodes, r.dirtyLinks = nil, nil, nil
	return d
}

// subscribers appends flow fi's routing anchors — the nodes of its
// unpruned classes — to buf and returns it.
func (r *Router) subscribers(fi int, buf []model.NodeID) []model.NodeID {
	off := r.classOff[fi]
	for k, cs := range r.flows[fi].Classes {
		if !r.pruned[off+k] {
			buf = append(buf, cs.Node)
		}
	}
	return buf
}

// PruneDeadSubscribers implements the re-entrant half of the Section 2.4
// second stage: every class whose admitted population in consumers is zero
// has its demand zeroed (MaxConsumers = 0 — the class stays in the
// problem, keeping the member set Refresh-compatible), and each affected
// flow's tree is re-routed to its surviving subscribers. Returns the
// number of newly pruned classes. Pruning is monotone; already-pruned
// classes are skipped. The caller republishes via TakeDelta +
// Engine.ResetRouting.
func (r *Router) PruneDeadSubscribers(consumers []int) (int, error) {
	if len(consumers) != len(r.prob.Classes) {
		return 0, fmt.Errorf("%w: %d populations for %d classes", ErrBadBuild, len(consumers), len(r.prob.Classes))
	}
	prunedNow := 0
	reroute := make([]bool, len(r.flows))
	for j, n := range consumers {
		if n > 0 || r.pruned[j] || r.prob.Classes[j].MaxConsumers == 0 {
			continue
		}
		r.pruned[j] = true
		r.prob.Classes[j].MaxConsumers = 0
		reroute[r.prob.Classes[j].Flow] = true
		prunedNow++
	}
	if prunedNow == 0 {
		return 0, nil
	}
	var subs []model.NodeID
	for fi := range r.flows {
		if !reroute[fi] {
			continue
		}
		subs = r.subscribers(fi, subs[:0])
		// Routing to a subset of the old subscribers over the same alive
		// topology cannot fail: the old tree already reached them all.
		tree, changed, err := r.topo.BuildTreeInto(r.sc, r.flows[fi].Source, subs, r.trees[fi])
		if err != nil {
			return prunedNow, fmt.Errorf("overlay: prune re-route flow %d (%s): %w", fi, r.flows[fi].Name, err)
		}
		if changed {
			r.commitTree(model.FlowID(fi), tree)
		} else {
			// The demand change alone dirties the flow: populations and the
			// node's admission mix must be recomputed from it.
			r.markFlow(model.FlowID(fi))
		}
	}
	return prunedNow, nil
}

// indexTree adds flow i to the reverse indexes for every element of tree.
func (r *Router) indexTree(i model.FlowID, tree Tree) {
	for _, li := range tree.Links {
		r.flowsByLink[li] = insertFlow(r.flowsByLink[li], int32(i))
	}
	for _, b := range tree.Nodes {
		r.flowsByNode[b] = insertFlow(r.flowsByNode[b], int32(i))
	}
}

// commitTree replaces flow i's tree, updating the problem's cost maps, the
// reverse indexes and the routing delta. Old and new element lists are
// ascending, so the symmetric difference is a two-pointer walk; elements
// in both trees are untouched (their cost entry is already right).
func (r *Router) commitTree(i model.FlowID, tree Tree) {
	old := r.trees[i]
	fs := &r.flows[i]

	a, b := 0, 0
	for a < len(old.Links) || b < len(tree.Links) {
		switch {
		case b >= len(tree.Links) || (a < len(old.Links) && old.Links[a] < tree.Links[b]):
			li := old.Links[a]
			r.flowsByLink[li] = removeFlow(r.flowsByLink[li], int32(i))
			delete(r.prob.Links[li].FlowCost, i)
			r.markLink(model.LinkID(li))
			a++
		case a >= len(old.Links) || tree.Links[b] < old.Links[a]:
			li := tree.Links[b]
			r.flowsByLink[li] = insertFlow(r.flowsByLink[li], int32(i))
			r.prob.Links[li].FlowCost[i] = fs.LinkCost
			r.markLink(model.LinkID(li))
			b++
		default:
			a++
			b++
		}
	}
	a, b = 0, 0
	for a < len(old.Nodes) || b < len(tree.Nodes) {
		switch {
		case b >= len(tree.Nodes) || (a < len(old.Nodes) && old.Nodes[a] < tree.Nodes[b]):
			bn := old.Nodes[a]
			r.flowsByNode[bn] = removeFlow(r.flowsByNode[bn], int32(i))
			delete(r.prob.Nodes[bn].FlowCost, i)
			r.markNode(bn)
			a++
		case a >= len(old.Nodes) || tree.Nodes[b] < old.Nodes[a]:
			bn := tree.Nodes[b]
			r.flowsByNode[bn] = insertFlow(r.flowsByNode[bn], int32(i))
			r.prob.Nodes[bn].FlowCost[i] = fs.NodeCost
			r.markNode(bn)
			b++
		default:
			a++
			b++
		}
	}

	r.trees[i] = tree
	r.markFlow(i)
}

func (r *Router) markFlow(i model.FlowID) {
	if !r.flowMark[i] {
		r.flowMark[i] = true
		r.dirtyFlows = append(r.dirtyFlows, i)
	}
}

func (r *Router) markNode(b model.NodeID) {
	if !r.nodeMark[b] {
		r.nodeMark[b] = true
		r.dirtyNodes = append(r.dirtyNodes, b)
	}
}

func (r *Router) markLink(l model.LinkID) {
	if !r.linkMark[l] {
		r.linkMark[l] = true
		r.dirtyLinks = append(r.dirtyLinks, l)
	}
}

// insertFlow inserts i into ascending list fl (no-op when present).
func insertFlow(fl []int32, i int32) []int32 {
	k, ok := slices.BinarySearch(fl, i)
	if ok {
		return fl
	}
	return slices.Insert(fl, k, i)
}

// removeFlow removes i from ascending list fl (no-op when absent).
func removeFlow(fl []int32, i int32) []int32 {
	k, ok := slices.BinarySearch(fl, i)
	if !ok {
		return fl
	}
	return slices.Delete(fl, k, k+1)
}
