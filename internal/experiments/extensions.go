package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// AsyncResult records the asynchronous-LRGP extension experiment (X1):
// the Section 3.5 asynchronous formulation, run as real message-passing
// agents, versus the synchronous reference.
type AsyncResult struct {
	SyncUtility    float64
	AsyncUtility   float64
	RelativeError  float64 // |async-sync|/sync at the end
	Samples        int
	ConvergedAfter time.Duration
	Converged      bool
}

// AsyncExperiment runs the asynchronous distributed cluster on the base
// workload until its sampled utility stabilizes within 2% of the
// synchronous optimum (or the timeout lapses).
func AsyncExperiment(opts Options, timeout time.Duration) (*AsyncResult, error) {
	o := opts.normalized()
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	ref, err := core.NewEngine(workload.Base(), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	want := ref.Solve(2 * o.Iterations).Utility

	net := transport.NewMemory()
	defer net.Close()
	cl, err := dist.New(workload.Base(), dist.Config{
		Core: core.Config{Adaptive: true},
		Mode: dist.Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &AsyncResult{SyncUtility: want}
	det := metrics.NewConvergenceDetector(10, 0.01)
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		s := cl.Sample()
		res.Samples++
		res.AsyncUtility = s.Utility
		if math.Abs(s.Utility-want)/want < 0.02 && det.Observe(s.Utility) {
			res.Converged = true
			res.ConvergedAfter = time.Since(start)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if want != 0 {
		res.RelativeError = math.Abs(res.AsyncUtility-want) / want
	}
	return res, nil
}

// AblationRow is one policy's outcome in the admission-control ablation
// (X2).
type AblationRow struct {
	Policy  string
	Utility float64
	// MaxOverload is the worst node usage minus capacity (0 when
	// feasible).
	MaxOverload float64
	Feasible    bool
}

// AblationAdmission (X2) quantifies what each half of LRGP contributes on
// the base workload:
//
//   - "lrgp": the full algorithm;
//   - "admit-all": no admission control — every consumer admitted, rates
//     pinned at r^min (the most favorable rate for over-admission);
//   - "rate-min + greedy": no rate optimization — rates at r^min, greedy
//     admission;
//   - "rate-max + greedy": rates at r^max, greedy admission.
func AblationAdmission(opts Options) ([]AblationRow, error) {
	o := opts.normalized()
	p := workload.Base()
	ix := model.NewIndex(p)

	var rows []AblationRow

	e, err := core.NewEngine(p.Clone(), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return nil, err
	}
	defer e.Close()
	res := e.Solve(2 * o.Iterations)
	rows = append(rows, AblationRow{
		Policy:   "lrgp",
		Utility:  res.Utility,
		Feasible: model.CheckFeasible(p, ix, res.Allocation, 1e-6) == nil,
	})

	// admit-all: n_j = n_j^max, rates at r^min.
	admitAll := model.NewAllocation(p)
	for j, c := range p.Classes {
		admitAll.Consumers[j] = c.MaxConsumers
	}
	over := 0.0
	for b := range p.Nodes {
		if o := model.NodeUsage(p, ix, admitAll, model.NodeID(b)) - p.Nodes[b].Capacity; o > over {
			over = o
		}
	}
	rows = append(rows, AblationRow{
		Policy:      "admit-all @ rate-min",
		Utility:     model.TotalUtility(p, admitAll),
		MaxOverload: over,
		Feasible:    over <= 0,
	})

	// Fixed-rate greedy variants.
	for _, fixed := range []struct {
		name string
		rate func(f model.Flow) float64
	}{
		{"rate-min + greedy", func(f model.Flow) float64 { return f.RateMin }},
		{"rate-max + greedy", func(f model.Flow) float64 { return f.RateMax }},
	} {
		rates := make([]float64, len(p.Flows))
		for i, f := range p.Flows {
			rates[i] = fixed.rate(f)
		}
		consumers, util := core.GreedyPopulations(p, ix, rates)
		a := model.Allocation{Rates: rates, Consumers: consumers}
		rows = append(rows, AblationRow{
			Policy:   fixed.name,
			Utility:  util,
			Feasible: model.CheckFeasible(p, ix, a, 1e-6) == nil,
		})
	}
	return rows, nil
}

// RenderAblation renders the X2 rows.
func RenderAblation(rows []AblationRow) *trace.Table {
	t := trace.NewTable("X2: admission-control ablation (base workload)",
		"Policy", "Utility", "Feasible", "Max node overload")
	for _, r := range rows {
		t.Add(r.Policy, fmt.Sprintf("%.0f", r.Utility), fmt.Sprint(r.Feasible), fmt.Sprintf("%.0f", r.MaxOverload))
	}
	return t
}

// LinkResult records the link-bottleneck extension (X3).
type LinkResult struct {
	Utilization    float64
	Utility        float64
	BaselineNoLink float64
	MaxLinkUsage   float64 // max over links of usage/capacity
	ConvergedAt    int
	Converged      bool
}

// LinkBottleneckExperiment (X3) adds one capacity-constrained link per
// flow at the given fraction of r^max and verifies that link pricing
// (Equation 13) pulls rates under the caps while admission control
// re-fills node capacity with consumers. The default cap of 1.5% of r^max
// (15 msgs/s) lands inside the base workload's converged operating range
// of roughly 10-24 msgs/s, so several links genuinely bind.
func LinkBottleneckExperiment(opts Options, utilization float64) (*LinkResult, error) {
	o := opts.normalized()
	if utilization <= 0 {
		utilization = 0.015
	}

	base, err := core.NewEngine(workload.Base(), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return nil, err
	}
	defer base.Close()
	baseline := base.Solve(2 * o.Iterations).Utility

	// The link-price gradient stepsize must match the scale of the node
	// prices' contribution to the path cost (thousands here, since the
	// node coefficients include G*n ~ 2*10^4); 10 is stable for this
	// workload (the dual's curvature bounds the stable step well above
	// it). The run uses a fixed horizon instead of the early-exit
	// convergence rule because utility plateaus at quantized values
	// while link prices are still climbing.
	p := workload.WithLinkBottlenecks(workload.Base(), utilization)
	e, err := core.NewEngine(p, o.engineConfig(core.Config{Adaptive: true, LinkGamma: 10}))
	if err != nil {
		return nil, err
	}
	defer e.Close()
	iters := 8 * o.Iterations
	ys := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		ys = append(ys, e.Step().Utility)
	}
	// Settling time by the post-hoc band rule (the amplitude rule fires
	// on intermediate plateaus while link prices are still climbing).
	convergedAt := recoveryIters(ys, 0, 0.005)

	alloc := e.Allocation()
	out := &LinkResult{
		Utilization:    utilization,
		Utility:        ys[len(ys)-1],
		BaselineNoLink: baseline,
		ConvergedAt:    convergedAt,
		Converged:      convergedAt > 0,
	}
	ix := e.Index()
	for _, l := range p.Links {
		if u := model.LinkUsage(p, ix, alloc, l.ID) / l.Capacity; u > out.MaxLinkUsage {
			out.MaxLinkUsage = u
		}
	}
	return out, nil
}
