package broker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/utility"
)

// stressProblem: `flows` flows, one class per flow plus one extra class
// on flow 0 carrying a mutating transform, so the stress mix covers both
// the Identity fast path and the clone-and-transform path.
func stressProblem(flows int) *model.Problem {
	p := &model.Problem{Name: "stress"}
	for i := 0; i < flows; i++ {
		p.Flows = append(p.Flows, model.Flow{
			ID: model.FlowID(i), Name: "f", Source: model.NodeID(i), RateMin: 10, RateMax: 1e9,
		})
		p.Nodes = append(p.Nodes, model.Node{
			ID: model.NodeID(i), Capacity: 9e9,
			FlowCost: map[model.FlowID]float64{model.FlowID(i): 1},
		})
		p.Classes = append(p.Classes, model.Class{
			ID: model.ClassID(i), Name: "c", Flow: model.FlowID(i), Node: model.NodeID(i),
			MaxConsumers: 64, CostPerConsumer: 1, Utility: utility.NewLog(10),
		})
	}
	p.Classes = append(p.Classes, model.Class{
		ID: model.ClassID(flows), Name: "annotated", Flow: 0, Node: 0,
		MaxConsumers: 64, CostPerConsumer: 1, Utility: utility.NewLog(10),
	})
	return p
}

// TestPublishStressConcurrent hammers Publish from many goroutines over
// several flows while the control plane concurrently churns allocations
// and attaches/detaches consumers. Run under -race this is the data
// plane's main memory-safety proof; the assertions check the snapshot
// semantics: per-flow sequence numbers are dense and duplicate-free, no
// single consumer sees the same (flow, seq) twice, and every counter
// total is exact.
func TestPublishStressConcurrent(t *testing.T) {
	const (
		flows      = 4
		publishers = 8 // goroutines per flow... spread over flows round-robin
		perG       = 2000
	)
	p := stressProblem(flows)
	reg := telemetry.NewRegistry()
	bm := telemetry.NewBrokerMetrics(reg)
	b, err := New(p,
		WithTelemetry(bm),
		WithTransform(model.ClassID(flows), Annotate{Attr: "tag", Value: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Handler-side receipt log: one slice per consumer, guarded by its
	// own mutex (handlers may run concurrently).
	type receipt struct {
		mu   sync.Mutex
		seqs map[model.FlowID][]uint64
	}
	var handlerCalls atomic.Uint64
	newHandler := func() (*receipt, Handler) {
		r := &receipt{seqs: make(map[model.FlowID][]uint64)}
		return r, func(m Message) {
			handlerCalls.Add(1)
			r.mu.Lock()
			r.seqs[m.Flow] = append(r.seqs[m.Flow], m.Seq)
			r.mu.Unlock()
		}
	}

	// Stable population: 4 consumers per class, admitted throughout.
	var receipts []*receipt
	alloc := model.NewAllocation(p)
	for j := range p.Classes {
		for k := 0; k < 4; k++ {
			r, h := newHandler()
			receipts = append(receipts, r)
			if _, err := b.AttachConsumer(model.ClassID(j), nil, h); err != nil {
				t.Fatal(err)
			}
		}
		alloc.Consumers[j] = 4
	}
	for i := range p.Flows {
		alloc.Rates[i] = 1e9
	}
	if err := b.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}

	var pubWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	// Control-plane churn: re-enact the allocation and churn a transient
	// consumer per class while publishers run. Transient consumers are
	// never admitted (admission stays at the stable 4, which attach-order
	// precedence pins to the stable population), so the delivery
	// assertions below stay exact. The incremental enact path makes the
	// re-enact and the never-admitted churn route no-ops (no snapshot
	// swap), so the loop also toggles a rate cap on the annotated class —
	// far above the offered load, so it never thins — to keep incremental
	// snapshot swaps racing the publishers throughout the run.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var ids []ConsumerID
			for j := range p.Classes {
				id, err := b.AttachConsumer(model.ClassID(j), nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, id)
			}
			if err := b.ApplyAllocation(alloc); err != nil {
				t.Error(err)
				return
			}
			for _, id := range ids {
				if err := b.DetachConsumer(id); err != nil {
					t.Error(err)
					return
				}
			}
			if err := b.SetClassRateCap(model.ClassID(flows), 1e9); err != nil {
				t.Error(err)
				return
			}
			if err := b.SetClassRateCap(model.ClassID(flows), 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Publishers: spread over flows, publishing with attrs on the shared
	// map (read-only by contract).
	attrs := map[string]float64{"price": 80}
	var attempts atomic.Uint64
	for g := 0; g < publishers; g++ {
		flow := model.FlowID(g % flows)
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for n := 0; n < perG; n++ {
				attempts.Add(1)
				if err := b.Publish(flow, attrs, "x"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Give the publishers the whole run, then stop the churner.
	done := make(chan struct{})
	go func() { pubWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged")
	}
	close(stop)
	churnWG.Wait()

	// Per-flow sequence: published counter equals goroutine sends, and
	// the seq space is dense 1..Published (every consumer of the flow's
	// class saw every seq exactly once — the stable population was
	// admitted for the entire run).
	perFlowSends := make(map[model.FlowID]uint64)
	for g := 0; g < publishers; g++ {
		perFlowSends[model.FlowID(g%flows)] += perG
	}
	var totalPublished uint64
	for i := 0; i < flows; i++ {
		fs, err := b.FlowStats(model.FlowID(i))
		if err != nil {
			t.Fatal(err)
		}
		if fs.Throttled != 0 {
			t.Errorf("flow %d throttled %d messages; the stress workload must stay under the rate cap", i, fs.Throttled)
		}
		if fs.Published != perFlowSends[model.FlowID(i)] {
			t.Errorf("flow %d published=%d, want %d", i, fs.Published, perFlowSends[model.FlowID(i)])
		}
		totalPublished += fs.Published
	}
	for ci, r := range receipts {
		r.mu.Lock()
		for flow, seqs := range r.seqs {
			seen := make(map[uint64]bool, len(seqs))
			for _, s := range seqs {
				if seen[s] {
					t.Errorf("consumer %d flow %d: duplicate delivery of seq %d", ci, flow, s)
				}
				seen[s] = true
				if s < 1 || s > perFlowSends[flow] {
					t.Errorf("consumer %d flow %d: seq %d out of range 1..%d", ci, flow, s, perFlowSends[flow])
				}
			}
			if uint64(len(seqs)) != perFlowSends[flow] {
				t.Errorf("consumer %d flow %d: received %d of %d messages", ci, flow, len(seqs), perFlowSends[flow])
			}
		}
		r.mu.Unlock()
	}

	// Counter exactness: handler invocations, class counters, telemetry
	// mirrors and WorkUnits must all agree. Every flow-0 message fans out
	// to 8 consumers (4 Identity + 4 annotated), other flows to 4.
	var classDelivered uint64
	for j := range p.Classes {
		cs, err := b.ClassStats(model.ClassID(j))
		if err != nil {
			t.Fatal(err)
		}
		classDelivered += cs.Delivered
		if cs.Filtered != 0 || cs.Thinned != 0 {
			t.Errorf("class %d: filtered=%d thinned=%d, want 0/0", j, cs.Filtered, cs.Thinned)
		}
	}
	f0 := perFlowSends[0]
	wantDelivered := 8*f0 + 4*(totalPublished-f0)
	if got := handlerCalls.Load(); got != wantDelivered {
		t.Errorf("handler invocations = %d, want %d", got, wantDelivered)
	}
	if classDelivered != wantDelivered {
		t.Errorf("sum of ClassStats.Delivered = %d, want %d", classDelivered, wantDelivered)
	}
	if got := bm.Delivered.Value(); got != wantDelivered {
		t.Errorf("telemetry delivered = %d, want %d", got, wantDelivered)
	}
	if got := bm.Published.Value(); got != totalPublished {
		t.Errorf("telemetry published = %d, want %d", got, totalPublished)
	}
	// WorkUnits: per message 1 routing + per class (1 transform + 4
	// filters + 4 deliveries); flow 0 crosses two classes.
	wantWork := totalPublished + 9*(totalPublished-f0) + 18*f0
	if got := b.WorkUnits(); got != wantWork {
		t.Errorf("WorkUnits = %d, want %d", got, wantWork)
	}
	if got := bm.WorkUnits.Value(); got != wantWork {
		t.Errorf("telemetry work units = %d, want %d", got, wantWork)
	}
}

// TestClassStatsCumulativeAcrossDetach pins the counter semantics of the
// sharded data plane: Delivered/Filtered are cumulative class totals (in
// line with the monotonic telemetry counters) and are not reduced when a
// counted consumer detaches. The pre-snapshot broker dropped the
// detached consumer's contribution; that was an artifact of per-consumer
// accounting, not a documented behavior.
func TestClassStatsCumulativeAcrossDetach(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := b.AttachConsumer(0, nil, nil)
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{1, 0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second)
		if err := b.Publish(0, nil, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DetachConsumer(id); err != nil {
		t.Fatal(err)
	}
	cs, _ := b.ClassStats(0)
	if cs.Delivered != 5 {
		t.Errorf("Delivered after detach = %d, want cumulative 5", cs.Delivered)
	}
	if cs.Attached != 0 || cs.Admitted != 0 {
		t.Errorf("population after detach = %d/%d, want 0/0", cs.Attached, cs.Admitted)
	}
}

// TestPublishIdentityZeroAllocs asserts the Identity-transform fast path
// allocates nothing per message: no attrs clone, no delivery scratch —
// the acceptance bar for the copy-on-write data plane. (The caller's
// attrs map is excluded: it is allocated once, outside the measured
// loop.)
func TestPublishIdentityZeroAllocs(t *testing.T) {
	br := benchBrokerFlows(t, 1, 8)
	attrs := map[string]float64{"price": 80}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := br.Publish(0, attrs, "x"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Identity Publish allocs/op = %g, want 0", allocs)
	}
}
