package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
)

// Engine runs synchronous LRGP iterations over a problem. It is the
// colocated formulation discussed in Section 3.5: all per-flow and per-node
// algorithm pieces execute in one process, in the same data-dependency
// order as the distributed version (rates, then populations, then prices).
//
// An Engine is not safe for concurrent use; wrap it or use package dist for
// a concurrent, message-passing deployment.
type Engine struct {
	p   *model.Problem
	ix  *model.Index
	cfg Config

	iteration int
	rates     []float64
	consumers []int
	active    []bool

	nodePrices []float64
	linkPrices []float64
	nodeGamma  []gammaController

	solvers []*rateSolver
	scratch []classBC
}

// StepResult summarizes one LRGP iteration.
type StepResult struct {
	// Iteration is 1-based.
	Iteration int
	// Utility is the objective value (Equation 1) after the iteration's
	// consumer allocation.
	Utility float64
	// MaxNodeOverload is the largest node usage minus capacity across
	// nodes (positive only when flow-node costs alone exceed some node's
	// capacity; the greedy step never overshoots otherwise).
	MaxNodeOverload float64
	// MaxLinkOverload is the largest link usage minus capacity.
	MaxLinkOverload float64
}

// NewEngine validates the problem and prepares an engine. The initial state
// is the LRGP starting point: all rates at r^min, all populations zero, all
// prices at the configured initial values.
func NewEngine(p *model.Problem, cfg Config) (*Engine, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	e := &Engine{
		p:          p,
		ix:         ix,
		cfg:        c,
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		active:     make([]bool, len(p.Flows)),
		nodePrices: make([]float64, len(p.Nodes)),
		linkPrices: make([]float64, len(p.Links)),
		nodeGamma:  make([]gammaController, len(p.Nodes)),
		solvers:    make([]*rateSolver, len(p.Flows)),
		scratch:    make([]classBC, 0, len(p.Classes)),
	}
	for i := range p.Flows {
		e.rates[i] = p.Flows[i].RateMin
		e.active[i] = true
		e.solvers[i] = newRateSolver(p, ix, model.FlowID(i))
	}
	for b := range e.nodePrices {
		e.nodePrices[b] = c.InitialNodePrice
		e.nodeGamma[b] = newGammaController(c)
	}
	for l := range e.linkPrices {
		e.linkPrices[l] = c.InitialLinkPrice
	}
	return e, nil
}

// Step performs one synchronous LRGP iteration: Algorithm 1 at every flow
// source, then Algorithm 2 and the Equation 12 price update at every node,
// then Algorithm 3 (Equation 13) for every link.
func (e *Engine) Step() StepResult {
	e.iteration++

	// 1. Rate allocation, using last iteration's populations and prices.
	for i := range e.p.Flows {
		if !e.active[i] {
			e.rates[i] = 0
			continue
		}
		price := e.flowPrice(model.FlowID(i))
		e.rates[i] = e.solvers[i].solve(e.consumers, price)
	}

	// 2. Greedy consumer allocation and node price update.
	res := StepResult{Iteration: e.iteration}
	for b := range e.p.Nodes {
		bid := model.NodeID(b)
		out := admitNode(e.p, e.ix, bid, e.rates, e.active, e.consumers, e.scratch)
		if over := out.used - e.p.Nodes[b].Capacity; over > res.MaxNodeOverload {
			res.MaxNodeOverload = over
		}

		gamma1, gamma2 := e.cfg.Gamma1, e.cfg.Gamma2
		prev := e.nodePrices[b]
		if e.cfg.Adaptive {
			gamma1 = e.nodeGamma[b].gamma
			gamma2 = gamma1
		}
		capacity := e.p.Nodes[b].Capacity
		next := nodePriceUpdate(prev, out.bestUnsatisfied, out.used, capacity, gamma1, gamma2)
		if e.cfg.Adaptive {
			e.nodeGamma[b].observe(priceGap(prev, out.bestUnsatisfied, out.used, capacity), prev)
		}
		e.nodePrices[b] = next
	}

	// 3. Link price update.
	for l := range e.p.Links {
		lid := model.LinkID(l)
		used := 0.0
		for _, i := range e.ix.FlowsByLink(lid) {
			if e.active[i] {
				used += e.p.Links[l].FlowCost[i] * e.rates[i]
			}
		}
		if over := used - e.p.Links[l].Capacity; over > res.MaxLinkOverload {
			res.MaxLinkOverload = over
		}
		e.linkPrices[l] = linkPriceUpdate(e.linkPrices[l], used, e.p.Links[l].Capacity, e.cfg.LinkGamma)
	}

	res.Utility = e.Utility()
	return res
}

// flowPrice computes PL_i + PB_i (Equations 8 and 9) for flow i from the
// current prices and populations.
func (e *Engine) flowPrice(i model.FlowID) float64 {
	price := 0.0
	for _, l := range e.ix.LinksByFlow(i) {
		price += e.p.Links[l].FlowCost[i] * e.linkPrices[l]
	}
	for _, b := range e.ix.NodesByFlow(i) {
		coeff := e.p.Nodes[b].FlowCost[i]
		for _, cid := range e.ix.ClassesByNode(b) {
			c := &e.p.Classes[cid]
			if c.Flow == i {
				coeff += c.CostPerConsumer * float64(e.consumers[cid])
			}
		}
		price += coeff * e.nodePrices[b]
	}
	return price
}

// Utility returns the current objective value (Equation 1). Classes of
// inactive flows contribute nothing (their populations are zero).
func (e *Engine) Utility() float64 {
	total := 0.0
	for j := range e.p.Classes {
		n := e.consumers[j]
		if n == 0 {
			continue
		}
		c := &e.p.Classes[j]
		total += float64(n) * c.Utility.Value(e.rates[c.Flow])
	}
	return total
}

// SetFlowActive includes or excludes a flow from subsequent iterations,
// modeling a flow source joining or leaving the system (the Figure 3
// experiment removes flow 5 mid-run). Deactivating zeroes the flow's rate
// and its classes' populations immediately.
func (e *Engine) SetFlowActive(i model.FlowID, active bool) {
	if e.active[i] == active {
		return
	}
	e.active[i] = active
	if !active {
		e.rates[i] = 0
		for _, cid := range e.ix.ClassesByFlow(i) {
			e.consumers[cid] = 0
		}
	} else {
		e.rates[i] = e.p.Flows[i].RateMin
	}
}

// FlowActive reports whether flow i participates in iterations.
func (e *Engine) FlowActive(i model.FlowID) bool { return e.active[i] }

// SetClassDemand changes a class's n^max mid-run, modeling consumers
// arriving at or leaving the system (the engine "runs all the time,
// responding to changes in workload", Section 2.1). The next iteration's
// greedy allocation picks the change up; prices adapt over the following
// iterations.
func (e *Engine) SetClassDemand(j model.ClassID, maxConsumers int) error {
	if j < 0 || int(j) >= len(e.p.Classes) {
		return fmt.Errorf("core: unknown class %d", j)
	}
	if maxConsumers < 0 {
		return fmt.Errorf("core: class %d demand %d < 0", j, maxConsumers)
	}
	e.p.Classes[j].MaxConsumers = maxConsumers
	if e.consumers[j] > maxConsumers {
		e.consumers[j] = maxConsumers
	}
	return nil
}

// SetNodeCapacity changes a node's capacity mid-run, modeling hardware
// degradation or scale-out.
func (e *Engine) SetNodeCapacity(b model.NodeID, capacity float64) error {
	if b < 0 || int(b) >= len(e.p.Nodes) {
		return fmt.Errorf("core: unknown node %d", b)
	}
	if capacity <= 0 {
		return fmt.Errorf("core: node %d capacity %g <= 0", b, capacity)
	}
	e.p.Nodes[b].Capacity = capacity
	return nil
}

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iteration }

// Problem returns the engine's problem.
func (e *Engine) Problem() *model.Problem { return e.p }

// Index returns the engine's precomputed lookup index.
func (e *Engine) Index() *model.Index { return e.ix }

// Allocation returns a copy of the current rates and populations.
func (e *Engine) Allocation() model.Allocation {
	a := model.Allocation{
		Rates:     make([]float64, len(e.rates)),
		Consumers: make([]int, len(e.consumers)),
	}
	copy(a.Rates, e.rates)
	copy(a.Consumers, e.consumers)
	return a
}

// NodePrices returns a copy of the node price vector.
func (e *Engine) NodePrices() []float64 {
	out := make([]float64, len(e.nodePrices))
	copy(out, e.nodePrices)
	return out
}

// LinkPrices returns a copy of the link price vector.
func (e *Engine) LinkPrices() []float64 {
	out := make([]float64, len(e.linkPrices))
	copy(out, e.linkPrices)
	return out
}

// Gammas returns a copy of the per-node adaptive stepsizes (meaningful only
// with Config.Adaptive).
func (e *Engine) Gammas() []float64 {
	out := make([]float64, len(e.nodeGamma))
	for b := range e.nodeGamma {
		out[b] = e.nodeGamma[b].gamma
	}
	return out
}

// Result summarizes a Solve run.
type Result struct {
	// Utility is the objective value at the final iteration.
	Utility float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the 0.1% amplitude rule was met.
	Converged bool
	// ConvergedAt is the first iteration satisfying the rule (or -1).
	ConvergedAt int
	// Allocation is the final allocation.
	Allocation model.Allocation
	// Trace is the utility after each iteration.
	Trace []float64
}

// Solve runs until the paper's convergence rule (utility oscillation
// amplitude < 0.1% over a trailing window) or maxIter iterations,
// whichever comes first, and returns the outcome. Iterations continue for
// one full window after first detection so the reported utility is the
// settled value.
func (e *Engine) Solve(maxIter int) Result {
	if maxIter <= 0 {
		maxIter = 250
	}
	det := metrics.NewConvergenceDetector(0, 0)
	trace := make([]float64, 0, maxIter)
	for t := 0; t < maxIter; t++ {
		r := e.Step()
		trace = append(trace, r.Utility)
		if det.Observe(r.Utility) {
			break
		}
	}
	return Result{
		Utility:     trace[len(trace)-1],
		Iterations:  len(trace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       trace,
	}
}
