package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFullMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-steps", "5000", "-temps", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mode          full", "best utility", "accepted"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRatesGreedyMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-steps", "2000", "-temps", "5,50", "-mode", "rates-greedy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mode          rates-greedy") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "quantum"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-temps", "abc"}, &out); err == nil {
		t.Error("bad temps accepted")
	}
	if err := run([]string{"-temps", ","}, &out); err == nil {
		t.Error("empty temps accepted")
	}
	if err := run([]string{"-workload", "zzz"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestParseTemps(t *testing.T) {
	got, err := parseTemps(" 5, 10 ,100 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 5 || got[2] != 100 {
		t.Errorf("parseTemps = %v", got)
	}
}
