package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TracedRun solves the base workload with the adaptive engine, writing one
// telemetry.IterationRecord per iteration to tw. The loop mirrors
// core.Engine.Solve exactly — same convergence detector, same stopping
// rule — so the recorded utility series replayed through a fresh detector
// reproduces the run's ConvergedAt. The caller owns tw and must Flush it.
func TracedRun(opts Options, tw *telemetry.TraceWriter) (core.Result, error) {
	o := opts.normalized()
	p := workload.Base()
	em := telemetry.NewEngineMetrics(telemetry.NewRegistry())
	e, err := core.NewEngine(p, o.engineConfig(core.Config{Adaptive: true, Telemetry: em}))
	if err != nil {
		return core.Result{}, err
	}
	defer e.Close()

	det := metrics.NewConvergenceDetector(0, 0)
	utilTrace := make([]float64, 0, o.Iterations)
	prev := make([]int, len(p.Classes))
	for t := 0; t < o.Iterations; t++ {
		r := e.Step()
		utilTrace = append(utilTrace, r.Utility)
		done := det.Observe(r.Utility)

		alloc := e.Allocation()
		delta := 0
		for j, n := range alloc.Consumers {
			if d := n - prev[j]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
			prev[j] = n
		}
		rec := telemetry.IterationRecord{
			Iteration:       t + 1,
			Utility:         r.Utility,
			MaxNodeOverload: r.MaxNodeOverload,
			MaxLinkOverload: r.MaxLinkOverload,
			StageNanos:      r.StageNanos,
			Rates:           alloc.Rates,
			Consumers:       alloc.Consumers,
			NodePrices:      e.NodePrices(),
			LinkPrices:      e.LinkPrices(),
			AdmissionDelta:  delta,
			Converged:       det.Converged(),
		}
		if err := tw.Write(&rec); err != nil {
			return core.Result{}, fmt.Errorf("writing trace record %d: %w", t+1, err)
		}
		if done {
			break
		}
	}
	return core.Result{
		Utility:     utilTrace[len(utilTrace)-1],
		Iterations:  len(utilTrace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       utilTrace,
	}, nil
}
