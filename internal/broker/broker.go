package broker

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// ConsumerID identifies an attached consumer.
type ConsumerID int

// Handler receives messages delivered to one consumer. Handlers run
// synchronously inside Publish and must return quickly. Concurrent
// publishes on a flow may invoke the same handler concurrently, so
// handlers must be safe for concurrent use. The delivered Message's
// Attrs map is read-only by contract: on the Identity-transform fast
// path it is the producer's own map, shared by every consumer of the
// message (see Message.Attrs).
type Handler func(m Message)

// Errors returned by broker operations.
var (
	ErrUnknownClass    = errors.New("broker: unknown class")
	ErrUnknownFlow     = errors.New("broker: unknown flow")
	ErrUnknownConsumer = errors.New("broker: unknown consumer")
	ErrThrottled       = errors.New("broker: rate limit exceeded")
)

// consumer is one attached consumer. The fields are control-plane owned:
// filter and handler are immutable after attach, and admitted is only
// read and written under Broker.mu — the data plane sees consumers
// exclusively through the admitted lists of immutable route snapshots.
type consumer struct {
	id       ConsumerID
	class    model.ClassID
	filter   Filter
	handler  Handler
	admitted bool
}

// classState is the authoritative (control-plane) state of one class.
// The broker mutex guards transform, consumers, admitted and thinner
// installation; the counter block is updated with atomics from both
// planes and shared by pointer with every route snapshot.
type classState struct {
	transform Transform
	// attach-ordered consumers; admission follows this order (earliest
	// attached admitted first, latest unadmitted first on shrink).
	consumers []*consumer
	admitted  int
	// thinner, when set, caps this class's delivery rate below the
	// flow's source rate (multirate thinning: elastic consumers receive
	// a subsampled stream, per the latest-price scenario's "reducing
	// the frequency of updates").
	thinner  *TokenBucket
	counters classCounters
}

// FlowStats reports one flow's publish-side accounting.
type FlowStats struct {
	Published uint64
	Throttled uint64
	Rate      float64
}

// ClassStats reports one class's delivery-side accounting. Delivered and
// Filtered are cumulative class totals: they keep counting across
// consumer churn and are not reduced when a consumer detaches.
type ClassStats struct {
	Attached  int
	Admitted  int
	Delivered uint64
	Filtered  uint64
	// Thinned counts messages dropped for this class by its delivery-
	// rate cap (see SetClassRateCap).
	Thinned uint64
}

// Broker hosts the flows and consumer classes of one problem instance and
// enacts optimizer allocations. All methods are safe for concurrent use.
//
// The broker is split into a lock-free data plane and a mutex-serialized
// control plane. Publish reads an immutable routing snapshot through an
// atomic pointer and touches only its flow's own sharded state, so
// publishes on distinct flows never contend and publishes on the same
// flow contend only on that flow's token bucket. Control operations
// (attach/detach, ApplyAllocation, SetClassRateCap) serialize on the
// mutex and publish a rebuilt snapshot (copy-on-write); a publish racing
// a control change delivers against whichever snapshot it loaded.
type Broker struct {
	p  *model.Problem
	ix *model.Index

	now func() time.Time

	// Data plane: per-flow shards and the routing snapshot. Stats
	// methods read these without locking. The abstract work counter
	// (one unit per message routed, per class transform applied, per
	// filter evaluation, per delivery — regressed by the calibrate
	// package to recover the paper's F/G resource-model coefficients)
	// is sharded into the flowStates; each Publish folds its units into
	// a single atomic add on its own flow's shard, so the total is
	// exact under concurrency and deterministic for a fixed serial
	// publish sequence.
	flows []flowState
	route atomic.Pointer[routeTable]

	// Control plane, guarded by mu. ApplyAllocation's optimistic diff
	// scan runs before taking mu (against the atomic mirrors below), so
	// concurrent enacts scan in parallel and only the delta application
	// serializes (see ApplyAllocation).
	mu           sync.Mutex
	classes      []classState
	nextID       ConsumerID
	byID         map[ConsumerID]*consumer
	nextProducer int
	producers    map[ProducerID]*Producer

	// tel, when non-nil, mirrors the broker's accounting into the
	// telemetry registry (message counters, fan-out histogram, consumer
	// gauges). All ObserveX methods are nil-safe and lock-free, so the
	// uninstrumented broker pays one branch per call site and the
	// instrumented data plane stays mutex-free.
	tel *telemetry.BrokerMetrics

	// Incremental-enact state (control-plane owned, guarded by mu; see
	// enact.go). dirtyClasses and dirtyFlows are scratch reused across
	// enacts; flowMark and blockMark with markEpoch dedup dirty flows
	// and route blocks without an O(flows) clear.
	dirtyClasses []model.ClassID
	dirtyFlows   []model.FlowID
	flowMark     []uint64
	blockMark    []uint64
	markEpoch    uint64
	enactStats   EnactStats
	enactTel     *telemetry.EnactMetrics

	// Dense mirrors of each flow's enacted rate (as Float64bits) and
	// each class's attached/admitted counts. Written only under mu,
	// atomically, so ApplyAllocation's diff scan reads them with no lock
	// at all: on a 10k-flow broker the scan streams sequential arrays
	// instead of dereferencing every padded flowState and classState
	// (~20k scattered cache misses), the read-mostly lines stay cached
	// across cores, and concurrent enacts overlap their scans entirely.
	enactedRates  []atomic.Uint64
	attachedCount []atomic.Int32
	admittedCount []atomic.Int32

	// Mutation journal over the mirrors: every mirror write under mu
	// appends an entry and bumps mutGen, so a lock-free optimistic scan
	// that loaded mutGen before reading the mirrors can validate itself
	// once it holds mu — it replays only the entries journaled since its
	// snapshot instead of rescanning the world. (Go atomics are
	// sequentially consistent: a mirror write the scan did not observe
	// must have a generation >= the scan's snapshot, so replay covers
	// every miss.) The ring is bounded; a scanner that fell more than
	// mutLogSize entries behind rescans under the lock.
	mutGen atomic.Uint64
	mutLog []uint64
}

// Mutation-journal entry encoding: the low bits carry the flow or class
// index, the mutClassBit flag distinguishes class-population entries
// (attached or admitted count moved) from flow-rate entries.
const (
	mutLogSize  = 1024
	mutClassBit = uint64(1) << 62
)

// journalLocked records one mirror mutation. Callers must hold mu, and
// must store the mirror value before journaling it — the scan-coverage
// argument above relies on that order.
func (b *Broker) journalLocked(entry uint64) {
	g := b.mutGen.Load()
	b.mutLog[g%mutLogSize] = entry
	b.mutGen.Store(g + 1)
}

// classWantsChange reports whether enacting want admitted consumers for
// class j would move its admitted count, after clamping want to the
// attached population. Reads only the atomic mirrors, so it is safe both
// under mu and from the lock-free scan (where a torn attached/admitted
// pair can only involve writes the journal replay re-checks anyway).
func (b *Broker) classWantsChange(j, want int) bool {
	if att := int(b.attachedCount[j].Load()); want > att {
		want = att
	}
	if want < 0 {
		want = 0
	}
	return want != int(b.admittedCount[j].Load())
}

// Option configures a Broker.
type Option interface {
	apply(*Broker)
}

type clockOption struct {
	now func() time.Time
}

func (o clockOption) apply(b *Broker) { b.now = o.now }

// WithClock injects a time source (deterministic tests). Under
// concurrent publishing the source must be safe for concurrent use.
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

type transformOption struct {
	class model.ClassID
	tr    Transform
}

func (o transformOption) apply(b *Broker) {
	b.classes[o.class].transform = o.tr
}

// WithTransform installs a per-class message transformation.
func WithTransform(class model.ClassID, tr Transform) Option {
	return transformOption{class: class, tr: tr}
}

type telemetryOption struct {
	m *telemetry.BrokerMetrics
}

func (o telemetryOption) apply(b *Broker) { b.tel = o.m }

// WithTelemetry mirrors the broker's accounting into m (see
// telemetry.NewBrokerMetrics). A nil handle is valid and leaves the
// broker uninstrumented.
func WithTelemetry(m *telemetry.BrokerMetrics) Option {
	return telemetryOption{m: m}
}

// New builds a broker for the problem. Flows start rate-limited at their
// minimum rates with no admitted consumers; call ApplyAllocation to enact
// an optimizer result.
func New(p *model.Problem, opts ...Option) (*Broker, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	b := &Broker{
		p:             p,
		ix:            model.NewIndex(p),
		now:           time.Now,
		flows:         make([]flowState, len(p.Flows)),
		classes:       make([]classState, len(p.Classes)),
		byID:          make(map[ConsumerID]*consumer),
		producers:     make(map[ProducerID]*Producer),
		flowMark:      make([]uint64, len(p.Flows)),
		blockMark:     make([]uint64, (len(p.Flows)+routeBlockSize-1)/routeBlockSize),
		enactedRates:  make([]atomic.Uint64, len(p.Flows)),
		attachedCount: make([]atomic.Int32, len(p.Classes)),
		admittedCount: make([]atomic.Int32, len(p.Classes)),
		mutLog:        make([]uint64, mutLogSize),
	}
	for j := range b.classes {
		b.classes[j].transform = Identity{}
	}
	for _, opt := range opts {
		opt.apply(b)
	}
	start := b.now()
	for i, f := range p.Flows {
		b.flows[i].bucket = NewTokenBucket(f.RateMin, 0, start)
		b.flows[i].setRate(f.RateMin)
		b.enactedRates[i].Store(math.Float64bits(f.RateMin))
	}
	b.rebuildRouteLocked()
	return b, nil
}

// Problem returns the broker's problem definition.
func (b *Broker) Problem() *model.Problem { return b.p }

// AttachConsumer registers a consumer in a class. The consumer receives
// messages only once admission control admits it (ApplyAllocation). A nil
// filter matches everything. Filters must be safe for concurrent use and
// must treat the message — including its Attrs map — as read-only.
func (b *Broker) AttachConsumer(class model.ClassID, filter Filter, h Handler) (ConsumerID, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return 0, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	if filter == nil {
		filter = MatchAll{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	c := &consumer{id: id, class: class, filter: filter, handler: h}
	cs := &b.classes[class]
	cs.consumers = append(cs.consumers, c)
	cs.counters.attached.Add(1)
	b.attachedCount[class].Add(1)
	b.journalLocked(uint64(class) | mutClassBit)
	b.byID[id] = c
	if b.tel != nil {
		b.tel.ObserveConsumers(b.consumerTotalsLocked())
	}
	return id, nil
}

// consumerTotalsLocked returns the attached and admitted consumer counts
// across all classes, summed from the dense admitted mirror. Callers
// must hold b.mu and should skip the call entirely when b.tel is nil —
// it is telemetry-only, and even a dense O(classes) scan is measurable
// inside the enact critical section.
func (b *Broker) consumerTotalsLocked() (attached, admitted int) {
	attached = len(b.byID)
	for j := range b.admittedCount {
		admitted += int(b.admittedCount[j].Load())
	}
	return attached, admitted
}

// DetachConsumer removes a consumer entirely. In-flight publishes that
// loaded the routing snapshot before the detach may still deliver to the
// consumer's handler.
func (b *Broker) DetachConsumer(id ConsumerID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	start := b.enactStartNanos()
	classes := 0
	delete(b.byID, id)
	cs := &b.classes[c.class]
	for k, cc := range cs.consumers {
		if cc.id == id {
			cs.consumers = append(cs.consumers[:k], cs.consumers[k+1:]...)
			break
		}
	}
	cs.counters.attached.Add(-1)
	b.attachedCount[c.class].Add(-1)
	if c.admitted {
		cs.admitted--
		cs.counters.admitted.Add(-1)
		b.admittedCount[c.class].Add(-1)
		// Only an admitted consumer is visible to the data plane; its
		// departure dirties exactly its class's flow. Detaching a
		// never-admitted consumer (the common case in attach/detach
		// storms) publishes nothing.
		b.dirtyClasses = append(b.dirtyClasses, c.class)
		classes = 1
	}
	// Journaled once, after every mirror write it covers (see
	// journalLocked: mirror stores must precede their journal entry).
	b.journalLocked(uint64(c.class) | mutClassBit)
	mode, flows := b.republishLocked()
	b.observeEnactLocked(start, mode, classes, flows, 0)
	if b.tel != nil {
		b.tel.ObserveConsumers(b.consumerTotalsLocked())
	}
	return nil
}

// Admitted reports whether a consumer is currently admitted.
func (b *Broker) Admitted(id ConsumerID) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	return c.admitted, nil
}

// lockEnact acquires b.mu for an enact, spinning briefly before
// parking. A delta apply's critical section is single-digit
// microseconds — shorter than a futex sleep/wake — and once waiters
// park, sync.Mutex escalates sustained contention into starvation-mode
// direct handoff, putting a scheduler wake-up on every subsequent
// acquisition; enacts racing on a parked mutex lose a third of their
// throughput to that latency. The spin is a bounded test-and-test-and-
// set poll (TryLock fails with a plain load while the lock is held, so
// spinners keep the state word shared instead of bouncing it), long
// enough to outlast a delta apply but not a full rebuild, after which
// the caller parks like anyone else.
func (b *Broker) lockEnact() {
	for i := 0; i < 512; i++ {
		if b.mu.TryLock() {
			return
		}
	}
	b.mu.Lock()
}

// ApplyAllocation enacts an optimizer allocation: flow token buckets are
// re-rated and each class admits (or unadmits) consumers to match n_j.
// Admission is capped by the number of attached consumers; earlier
// attachments are admitted first and the latest admitted are unadmitted
// first when shrinking. The change becomes visible to publishers as one
// atomic snapshot swap.
//
// The enact cost is proportional to the delta, not to broker size: flows
// whose rate is unchanged keep their token buckets untouched, classes
// whose admitted count is unchanged are skipped entirely, and the new
// snapshot shares every clean flow's route slice with its predecessor
// (see enact.go). An allocation identical to the enacted one publishes
// no snapshot at all.
//
// The O(flows+classes) diff scan takes no lock at all — it streams the
// atomic mirrors — so concurrent enacts scan in parallel and serialize
// only on the O(delta) application. The scan's result is validated
// under the lock by replaying the mirror mutation journal — only the
// entries recorded since the scan's generation snapshot — so the apply
// phase never trusts a stale candidate and never misses a change that
// landed mid-scan.
func (b *Broker) ApplyAllocation(a model.Allocation) error {
	if len(a.Rates) != len(b.p.Flows) || len(a.Consumers) != len(b.p.Classes) {
		return fmt.Errorf("broker: allocation shape %d/%d, want %d/%d",
			len(a.Rates), len(a.Consumers), len(b.p.Flows), len(b.p.Classes))
	}
	now := b.now()
	start := b.enactStartNanos()

	// Phase A: optimistic lock-free diff against the atomic mirrors.
	// Candidate indices land in stack buffers so a small delta allocates
	// nothing here. The generation snapshot must be loaded before the
	// mirror reads: sequential consistency then guarantees any mirror
	// write the scan misses was journaled at a generation >= g0.
	var rateBuf, classBuf [32]int32
	rateIdx, classIdx := rateBuf[:0], classBuf[:0]
	g0 := b.mutGen.Load()
	for i, r := range a.Rates {
		if math.Float64frombits(b.enactedRates[i].Load()) != r {
			rateIdx = append(rateIdx, int32(i))
		}
	}
	for j, want := range a.Consumers {
		if b.classWantsChange(j, want) {
			classIdx = append(classIdx, int32(j))
		}
	}

	// Phase B: apply the delta under the lock.
	b.lockEnact()
	defer b.mu.Unlock()
	if gen := b.mutGen.Load(); gen-g0 > mutLogSize {
		// The scan fell further behind than the journal remembers
		// (possible only under extreme churn): rescan authoritatively.
		rateIdx, classIdx = rateIdx[:0], classIdx[:0]
		for i, r := range a.Rates {
			if math.Float64frombits(b.enactedRates[i].Load()) != r {
				rateIdx = append(rateIdx, int32(i))
			}
		}
		for j, want := range a.Consumers {
			if b.classWantsChange(j, want) {
				classIdx = append(classIdx, int32(j))
			}
		}
	} else {
		// Replay every mutation journaled since the scan. Duplicated
		// candidates are harmless — the apply loops re-verify each one.
		for g := g0; g != gen; g++ {
			e := b.mutLog[g%mutLogSize]
			idx := int32(e &^ mutClassBit)
			if e&mutClassBit != 0 {
				if b.classWantsChange(int(idx), a.Consumers[idx]) {
					classIdx = append(classIdx, idx)
				}
			} else if math.Float64frombits(b.enactedRates[idx].Load()) != a.Rates[idx] {
				rateIdx = append(rateIdx, idx)
			}
		}
	}
	rates := 0
	for _, i := range rateIdx {
		r := a.Rates[i]
		if math.Float64frombits(b.enactedRates[i].Load()) == r {
			// Candidate went stale between scan and apply. Skipping a
			// same-rate SetRate is also what keeps re-enacts transcript-
			// identical: token-bucket refill is associative (a min-
			// clamped linear ramp), so not touching the bucket leaves
			// every future admission decision bit-identical.
			continue
		}
		f := &b.flows[i]
		f.bucket.SetRate(r, now)
		f.setRate(r)
		b.enactedRates[i].Store(math.Float64bits(r))
		b.journalLocked(uint64(i))
		rates++
	}
	classes := 0
	for _, j := range classIdx {
		want := a.Consumers[j]
		if att := int(b.attachedCount[j].Load()); want > att {
			want = att
		}
		if want < 0 {
			want = 0
		}
		if want == int(b.admittedCount[j].Load()) {
			// Stale candidate, or: the admitted set is always the first
			// cs.admitted consumers in attach order (attach appends
			// unadmitted; detach and the flips below preserve the
			// prefix), so an equal count means identical membership.
			continue
		}
		cs := &b.classes[j]
		if want > cs.admitted {
			for _, c := range cs.consumers[cs.admitted:want] {
				c.admitted = true
			}
		} else {
			for _, c := range cs.consumers[want:cs.admitted] {
				c.admitted = false
			}
		}
		cs.admitted = want
		cs.counters.admitted.Store(int64(want))
		b.admittedCount[j].Store(int32(want))
		b.journalLocked(uint64(j) | mutClassBit)
		b.dirtyClasses = append(b.dirtyClasses, model.ClassID(j))
		classes++
	}
	mode, flows := b.republishLocked()
	b.enactStats.Applies++
	if classes == 0 && rates == 0 {
		b.enactStats.NoopApplies++
	}
	b.observeEnactLocked(start, mode, classes, flows, rates)
	b.tel.ObserveAllocation()
	if classes != 0 && b.tel != nil {
		b.tel.ObserveConsumers(b.consumerTotalsLocked())
	}
	return nil
}

// Publish injects a message into a flow. It applies the source rate limit,
// then delivers to every admitted consumer of every class of the flow,
// applying the class transform and each consumer's filter. It returns
// ErrThrottled when the rate limiter rejects the message.
//
// Publish is the broker's lock-free fast path: it reads the routing
// snapshot through an atomic pointer and touches only its own flow's
// sharded state, so concurrent publishes on distinct flows never contend.
// When the class transform is Identity the message is delivered carrying
// the caller's attrs map itself — no copy is made, and the whole path
// performs no allocations. Callers and consumers must therefore treat
// attrs as immutable once published.
func (b *Broker) Publish(flow model.FlowID, attrs map[string]float64, body string) error {
	if flow < 0 || int(flow) >= len(b.flows) {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	now := b.now()
	f := &b.flows[flow]
	if !f.bucket.Allow(now) {
		f.throttled.Add(1)
		b.tel.ObserveThrottle()
		return ErrThrottled
	}
	f.published.Add(1)
	msg := Message{
		Flow:  flow,
		Seq:   f.seq.Add(1),
		Time:  now,
		Attrs: attrs,
		Body:  body,
	}

	work := uint64(1) // per-message routing work
	delivered, filtered := 0, 0
	routes := b.route.Load().flowRoutes(flow)
	for ri := range routes {
		cr := &routes[ri]
		if cr.thinner != nil && !cr.thinner.Allow(now) {
			cr.counters.thinned.Add(1)
			b.tel.ObserveThinned()
			continue
		}
		classMsg := msg
		if !cr.identity {
			// Only a mutating transform gets (and pays for) a private
			// copy of the attribute map.
			classMsg.Attrs = cloneAttrs(attrs)
			classMsg = cr.transform.Apply(classMsg)
		}
		work++ // per-class transform work
		var classDelivered, classFiltered uint64
		for _, c := range cr.consumers {
			work++ // per-consumer filter evaluation
			if c.filter.Match(classMsg) {
				work++ // per-consumer delivery
				classDelivered++
				if c.handler != nil {
					c.handler(classMsg)
				}
			} else {
				classFiltered++
			}
		}
		if classDelivered != 0 {
			cr.counters.delivered.Add(classDelivered)
		}
		if classFiltered != 0 {
			cr.counters.filtered.Add(classFiltered)
		}
		delivered += int(classDelivered)
		filtered += int(classFiltered)
	}
	f.work.Add(work)
	b.tel.ObservePublish(delivered, filtered, work)
	return nil
}

// WorkUnits returns the cumulative abstract work counter (see the field
// comment on Broker.flows): deterministic across runs for identical
// serial publish sequences, and an exact interleaving-order-free total
// under concurrent publishing. Sums the per-flow atomic shards — never
// blocks the data plane (while publishers are running the sum may
// straddle in-flight messages, like any multi-counter scrape).
func (b *Broker) WorkUnits() uint64 {
	var total uint64
	for i := range b.flows {
		total += b.flows[i].work.Load()
	}
	return total
}

// FlowStats returns the publish-side counters of a flow. Served from
// atomics: scraping never stalls publishers.
func (b *Broker) FlowStats(flow model.FlowID) (FlowStats, error) {
	if flow < 0 || int(flow) >= len(b.flows) {
		return FlowStats{}, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	f := &b.flows[flow]
	return FlowStats{
		Published: f.published.Load(),
		Throttled: f.throttled.Load(),
		Rate:      f.rate(),
	}, nil
}

// ClassStats returns the delivery-side counters of a class. Served from
// atomics: scraping never stalls publishers. Under concurrent publishing
// the fields are individually exact but not a single atomic snapshot.
func (b *Broker) ClassStats(class model.ClassID) (ClassStats, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return ClassStats{}, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	cc := &b.classes[class].counters
	return ClassStats{
		Attached:  int(cc.attached.Load()),
		Admitted:  int(cc.admitted.Load()),
		Delivered: cc.delivered.Load(),
		Filtered:  cc.filtered.Load(),
		Thinned:   cc.thinned.Load(),
	}, nil
}

// SetClassRateCap installs (or, with rate <= 0, removes) a delivery-rate
// cap for one class, thinning its stream below the flow's source rate.
// This is the enactment hook for multirate extensions: different classes
// of the same flow can receive different effective rates.
func (b *Broker) SetClassRateCap(class model.ClassID, rate float64) error {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	cs := &b.classes[class]
	switch {
	case rate <= 0:
		if cs.thinner == nil {
			// Removing a cap that was never installed changes nothing.
			return nil
		}
		cs.thinner = nil
	case cs.thinner != nil:
		// Re-rating mutates the shared bucket in place; live snapshots
		// pick the new rate up immediately, no rebuild needed.
		cs.thinner.SetRate(rate, now)
		return nil
	default:
		cs.thinner = NewTokenBucket(rate, 0, now)
	}
	// Installing or removing the bucket changes the class's routing
	// entry, which lives in exactly one flow's slice — republish just it.
	start := b.enactStartNanos()
	b.dirtyClasses = append(b.dirtyClasses, class)
	mode, flows := b.republishLocked()
	b.observeEnactLocked(start, mode, 1, flows, 0)
	return nil
}
