package dist

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/transport"
)

// distPayloadCases enumerates representative dist payloads, including the
// map-edge cases (empty vs omitted) whose JSON omitempty semantics the
// binary codec must reproduce exactly.
func distPayloadCases() (rates []rateMsg, reports []reportMsg, ctrls []ctrlMsg) {
	rates = []rateMsg{
		{},
		{Round: 1, Flow: 0, Rate: 0, Active: true},
		{Round: 7, Flow: 5, Rate: 123.456, Active: true},
		{Round: 1 << 20, Flow: 671, Rate: 1e-12, Active: false},
		{Round: 3, Flow: 2, Rate: 1.7976931348623157e308, Active: true},
	}
	reports = []reportMsg{
		{},
		{Round: 1, Node: 0, Price: 0.5, Used: 10, BestBC: 2},
		{
			Round: 42, Node: 17, Price: 3.25, Used: 99.5, BestBC: 0.125,
			Populations: map[model.ClassID]int{0: 5, 3: 0, 19: 1200},
		},
		{
			Round: 9, Node: 2, Price: 1e-9,
			Populations: map[model.ClassID]int{7: 3},
			Deliveries:  map[model.ClassID]float64{7: 0.75},
			LinkPrices:  map[model.LinkID]float64{0: 0.001, 4: 12.5},
		},
		{Round: 2, Node: 1, LinkPrices: map[model.LinkID]float64{3: 0}},
	}
	ctrls = []ctrlMsg{
		{},
		{RunUntil: 100},
		{Leave: true},
		{Join: true},
		{Stop: true},
		{RunUntil: 1 << 30, Leave: true, Join: true, Stop: true},
	}
	return rates, reports, ctrls
}

// TestDistPayloadRoundTrip is the codec property test: every payload must
// decode to identical values through both wire formats, and the binary
// decoding must equal the JSON decoding (nil-vs-empty maps included).
func TestDistPayloadRoundTrip(t *testing.T) {
	rates, reports, ctrls := distPayloadCases()
	roundTrip := func(t *testing.T, v any, decode func(transport.Message) (any, error)) {
		t.Helper()
		var decoded [2]any
		for i, wire := range []transport.Wire{transport.WireJSON, transport.WireBinary} {
			payload, err := encodeBody(wire, nil, v)
			if err != nil {
				t.Fatalf("%v encode: %v", wire, err)
			}
			got, err := decode(transport.Message{Payload: payload})
			if err != nil {
				t.Fatalf("%v decode: %v", wire, err)
			}
			if !reflect.DeepEqual(got, v) {
				t.Fatalf("%v round trip: got %+v, want %+v", wire, got, v)
			}
			decoded[i] = got
		}
		if !reflect.DeepEqual(decoded[0], decoded[1]) {
			t.Fatalf("wire formats disagree: json %+v, binary %+v", decoded[0], decoded[1])
		}
	}
	for _, rm := range rates {
		roundTrip(t, rm, func(m transport.Message) (any, error) { return decodeRate(m) })
	}
	for _, rm := range reports {
		roundTrip(t, rm, func(m transport.Message) (any, error) { return decodeReport(m) })
	}
	for _, cm := range ctrls {
		roundTrip(t, cm, func(m transport.Message) (any, error) { return decodeCtrl(m) })
	}
}

// TestDistPayloadDecodeRejectsCorruption: every truncation of a binary
// payload, and trailing garbage after it, must error — never panic or
// silently succeed.
func TestDistPayloadDecodeRejectsCorruption(t *testing.T) {
	_, reports, _ := distPayloadCases()
	full := reports[3].appendBinary(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeReport(transport.Message{Payload: full[:cut:cut]}); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := decodeReport(transport.Message{Payload: append(bytes.Clone(full), 0xFF)}); err == nil {
		t.Error("trailing garbage decoded successfully")
	}
	if _, err := decodeRate(transport.Message{Payload: []byte{reportTag, 1, 2}}); err == nil {
		t.Error("wrong tag accepted by decodeRate")
	}
	// A huge declared map count must not allocate or over-read.
	huge := []byte{reportTag, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := decodeReport(transport.Message{Payload: huge}); err == nil {
		t.Error("oversized population count accepted")
	}
}

// TestEncodeDecodeBatch round-trips gateway batch frames in both layouts.
// A batch's inner payloads use the same wire as its envelope (the JSON
// array layout cannot carry non-JSON payloads: Payload is json.RawMessage),
// which holds by construction since a cluster runs one wire format.
func TestEncodeDecodeBatch(t *testing.T) {
	for _, wire := range []transport.Wire{transport.WireJSON, transport.WireBinary} {
		rate, _ := encodeBody(wire, nil, rateMsg{Round: 3, Flow: 1, Rate: 2.5, Active: true})
		report, _ := encodeBody(wire, nil, reportMsg{Round: 3, Node: 0, Price: 1.5})
		ctrl, _ := encodeBody(wire, nil, ctrlMsg{Stop: true})
		msgs := []transport.Message{
			{From: "flow/1", To: "node/0", Kind: rateKind, Payload: rate},
			{From: "node/0", To: "flow/1", Kind: reportKind, Payload: report},
			{From: "cluster-ctrl", To: "flow/1", Kind: ctrlKind, Payload: ctrl},
		}
		payload, err := encodeBatch(wire, msgs)
		if err != nil {
			t.Fatalf("%v: %v", wire, err)
		}
		got, err := decodeBatch(payload)
		if err != nil {
			t.Fatalf("%v: %v", wire, err)
		}
		if !reflect.DeepEqual(got, msgs) {
			t.Fatalf("%v batch round trip: got %+v, want %+v", wire, got, msgs)
		}
	}
	if got, err := decodeBatch(nil); err != nil || got != nil {
		t.Errorf("empty batch: %v, %v", got, err)
	}
}

// FuzzDecodeDistPayloads throws arbitrary bytes at every dist payload
// decoder: none may panic or over-read, and any successfully decoded binary
// payload must survive a canonical re-encode/decode round trip.
func FuzzDecodeDistPayloads(f *testing.F) {
	rates, reports, ctrls := distPayloadCases()
	for _, rm := range rates {
		f.Add(rm.appendBinary(nil))
	}
	for _, rm := range reports {
		f.Add(rm.appendBinary(nil))
	}
	for _, cm := range ctrls {
		f.Add(cm.appendBinary(nil))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m := transport.Message{Payload: data}
		binary := len(data) > 0 && data[0] != '{'
		if rm, err := decodeRate(m); err == nil && binary {
			again, err := decodeRate(transport.Message{Payload: rm.appendBinary(nil)})
			if err != nil || !reflect.DeepEqual(again, rm) {
				t.Fatalf("rate re-encode mismatch: %+v vs %+v (%v)", again, rm, err)
			}
		}
		if rm, err := decodeReport(m); err == nil && binary {
			again, err := decodeReport(transport.Message{Payload: rm.appendBinary(nil)})
			if err != nil || !reflect.DeepEqual(again, rm) {
				t.Fatalf("report re-encode mismatch: %+v vs %+v (%v)", again, rm, err)
			}
		}
		if cm, err := decodeCtrl(m); err == nil && binary {
			again, err := decodeCtrl(transport.Message{Payload: cm.appendBinary(nil)})
			if err != nil || !reflect.DeepEqual(again, cm) {
				t.Fatalf("ctrl re-encode mismatch: %+v vs %+v (%v)", again, cm, err)
			}
		}
		// The batch oracle covers the binary envelope layout only: a JSON
		// array batch may decode an empty payload as non-nil, which the
		// canonical binary re-decode represents as nil.
		if msgs, err := decodeBatch(data); err == nil && binary && data[0] != '[' {
			payload, err := encodeBatch(transport.WireBinary, msgs)
			if err != nil {
				t.Fatalf("batch re-encode: %v", err)
			}
			again, err := decodeBatch(payload)
			if err != nil || !reflect.DeepEqual(again, msgs) {
				t.Fatalf("batch re-encode mismatch (%v)", err)
			}
		}
	})
}
