// Package dist runs LRGP as a distributed system: one agent per flow
// source (Algorithm 1) and one agent per node (Algorithms 2 and 3, plus
// link-price computation for the links it owns), exchanging messages over a
// transport.Network. A collector endpoint aggregates per-round state so
// callers can observe the global utility the same way the paper's
// simulations do.
//
// Two execution modes are provided:
//
//   - Synchronous (the paper's main formulation): agents proceed in
//     lock-step rounds, each waiting for the full set of round-t inputs
//     before computing round t (or t+1) outputs.
//   - Asynchronous (Section 3.5): agents run on independent tickers using
//     the latest values received, with flow sources averaging the last few
//     prices from each resource to tolerate missing or stale updates.
package dist

import (
	"repro/internal/model"
)

// Endpoint naming scheme.
const (
	collectorName = "collector"
	ctrlKind      = "ctrl"
	rateKind      = "rate"
	reportKind    = "report"
)

func flowName(i model.FlowID) string {
	return "flow/" + itoa(int(i))
}

func nodeName(b model.NodeID) string {
	return "node/" + itoa(int(b))
}

func itoa(v int) string {
	// Tiny strconv.Itoa clone to keep the hot path allocation-free for
	// small ids is unnecessary; use the simple formulation.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// rateMsg announces a flow's rate for one round (flow agent -> node agents
// and collector).
type rateMsg struct {
	Round int          `json:"round"`
	Flow  model.FlowID `json:"flow"`
	Rate  float64      `json:"rate"`
	// Active false announces the flow's departure: this is the flow's
	// final message, and receivers must stop expecting it afterwards.
	Active bool `json:"active"`
}

// reportMsg carries a node's consumer allocation and prices for one round
// (node agent -> flow agents and collector).
type reportMsg struct {
	Round int          `json:"round"`
	Node  model.NodeID `json:"node"`
	Price float64      `json:"price"`
	// Populations holds n_j for the classes attached at this node.
	Populations map[model.ClassID]int `json:"populations,omitempty"`
	// Deliveries holds d_j for the classes attached at this node
	// (multirate mode only; absent in single-rate mode, where d_j = r_i).
	Deliveries map[model.ClassID]float64 `json:"deliveries,omitempty"`
	// LinkPrices holds the prices of the links this node owns (links
	// whose To endpoint is this node).
	LinkPrices map[model.LinkID]float64 `json:"linkPrices,omitempty"`
	// Used and BestBC expose the Equation 12 inputs for observability.
	Used   float64 `json:"used"`
	BestBC float64 `json:"bestBC"`
}

// ctrlMsg drives agents from the cluster.
type ctrlMsg struct {
	// RunUntil lets a synchronous flow agent advance up to (and
	// including) the given round, then pause.
	RunUntil int `json:"runUntil,omitempty"`
	// Leave tells a flow agent to announce departure and idle (it can
	// rejoin later).
	Leave bool `json:"leave,omitempty"`
	// Join tells an idled flow agent to re-announce itself and resume.
	Join bool `json:"join,omitempty"`
	// Stop tells any agent to exit immediately.
	Stop bool `json:"stop,omitempty"`
}
