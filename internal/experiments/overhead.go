package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// OverheadRow records the communication cost of distributed LRGP on one
// workload (X5). The paper notes an iteration's wall-clock cost is about
// one overlay round-trip; this experiment quantifies the message and byte
// volume that buys.
type OverheadRow struct {
	Workload string
	Flows    int
	Nodes    int
	Rounds   int
	// MessagesPerRound and BytesPerRound average over the run (rate
	// announcements + node reports + collector copies).
	MessagesPerRound float64
	BytesPerRound    float64
	// Utility sanity-checks that the run actually optimized.
	Utility float64
}

// OverheadExperiment (X5) runs the synchronous distributed cluster over a
// metered in-memory transport for each Table 2 workload and reports the
// per-round message volume, which grows with flows x nodes while the
// iteration count stays flat (Table 2's finding).
func OverheadExperiment(opts Options, rounds int) ([]OverheadRow, error) {
	o := opts.normalized()
	if rounds <= 0 {
		rounds = o.Iterations / 5
		if rounds < 10 {
			rounds = 10
		}
	}

	var out []OverheadRow
	for _, p := range workload.Table2Workloads() {
		net := transport.NewMemory()
		cl, err := dist.New(p, dist.Config{Core: core.Config{Adaptive: true}}, net)
		if err != nil {
			net.Close()
			return nil, err
		}
		stats, err := cl.Run(rounds, 2*time.Minute)
		if err != nil {
			cl.Close()
			net.Close()
			return nil, err
		}
		m := net.NetStats()
		if err := cl.Close(); err != nil {
			net.Close()
			return nil, err
		}
		net.Close()

		out = append(out, OverheadRow{
			Workload:         p.Name,
			Flows:            len(p.Flows),
			Nodes:            len(p.Nodes),
			Rounds:           rounds,
			MessagesPerRound: float64(m.Delivered) / float64(rounds),
			BytesPerRound:    float64(m.Bytes) / float64(rounds),
			Utility:          stats[len(stats)-1].Utility,
		})
	}
	return out, nil
}

// RenderOverhead renders X5 rows.
func RenderOverhead(rows []OverheadRow) *trace.Table {
	t := trace.NewTable("X5: communication overhead of distributed LRGP",
		"Workload", "Flows", "Nodes", "Msgs/round", "Bytes/round", "Utility")
	for _, r := range rows {
		t.Add(r.Workload,
			fmt.Sprint(r.Flows), fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.1f", r.MessagesPerRound),
			fmt.Sprintf("%.0f", r.BytesPerRound),
			fmt.Sprintf("%.0f", r.Utility))
	}
	return t
}
