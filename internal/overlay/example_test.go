package overlay_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/overlay"
	"repro/internal/utility"
)

// Example derives an optimization problem from a topology: the flow is
// routed along shortest paths, which fixes its link and node cost
// coefficients.
func Example() {
	topo := overlay.Line(4, 10_000) // 0 - 1 - 2 - 3

	problem, err := overlay.Build(topo, 9e5, []overlay.FlowSpec{{
		Name: "feed", Source: 0, RateMin: 10, RateMax: 1000,
		LinkCost: 1, NodeCost: 3,
		Classes: []overlay.ClassSpec{
			{Name: "near", Node: 1, MaxConsumers: 100, CostPerConsumer: 19, Utility: utility.NewLog(20)},
			{Name: "far", Node: 3, MaxConsumers: 100, CostPerConsumer: 19, Utility: utility.NewLog(20)},
		},
	}})
	if err != nil {
		fmt.Println(err)
		return
	}
	ix := model.NewIndex(problem)
	fmt.Printf("flow reaches %d nodes over %d links\n",
		len(ix.NodesByFlow(0)), len(ix.LinksByFlow(0)))
	// Output:
	// flow reaches 4 nodes over 3 links
}
