package dist

import (
	"slices"
	"strings"

	"repro/internal/model"
)

// RoundSummary aggregates one round's events across all agents: how much
// traffic the round generated, how many stall chirps re-announced it (the
// loss/repair proxy — agents chirp a round exactly when its frames failed
// to make progress), and the wall-time window it was live.
type RoundSummary struct {
	Round int
	// Sends counts announces/reports sent for this round; Recvs the
	// frames received tagged with it (absorbed or rejected); Resends the
	// stall chirps re-announcing it.
	Sends   int
	Recvs   int
	Resends int
	// FirstNanos and LastNanos bound the round's event window.
	FirstNanos int64
	LastNanos  int64
}

// AgentSummary ranks one flow/node agent's progress against its
// communicating component's frontier (the agents it exchanges messages
// with, discovered from the log's recv edges — round numbers are not
// causally comparable across disconnected subgraphs).
type AgentSummary struct {
	Agent string
	// FirstRound and LastRound are the agent's observed round-advance
	// range (FirstRound > 1 means its ring wrapped).
	FirstRound int
	LastRound  int
	// Chirps counts the agent's stall re-announces.
	Chirps int
	// MaxLag is the worst observed frontier-minus-agent round gap.
	MaxLag int
	// BehindNanos integrates max(0, lag-1) over the agent's observed
	// window: time spent more than one round behind the frontier (one
	// round behind is normal pipeline skew). The straggler score.
	BehindNanos int64
}

// Analysis is the merged cross-agent view of one event log.
type Analysis struct {
	// MaxRound is the highest round any agent completed; SpanNanos the
	// full event window.
	MaxRound  int
	SpanNanos int64
	// Rounds is the per-round timeline in round order.
	Rounds []RoundSummary
	// Agents is every flow/node agent, most-straggling first
	// (BehindNanos descending, chirps as tiebreak).
	Agents []AgentSummary
	// StalenessDist histograms the observed input lag at each send: how
	// stale the inputs actually used were, in rounds (the effective
	// staleness distribution, bounded by Config.Staleness).
	StalenessDist map[int]int
	// TotalResends and Stalls aggregate chirps and stall-detector trips.
	TotalResends int
	Stalls       int
}

// frontierStep is one increase of a component's completed-round maximum.
type frontierStep struct {
	nanos int64
	round int
}

// unionFind groups agents into communicating components from the recv
// edges in the log. Round numbers are causally comparable only between
// agents that exchange messages; judging an agent against a global
// frontier would let an unrelated fast subgraph mislabel a whole slow
// component as stragglers.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// agentTrack is one agent's raw progress timeline.
type agentTrack struct {
	firstNanos int64
	lastNanos  int64
	advances   []frontierStep // (nanos, completed round), ascending
	chirps     int
}

// Analyze merges a flight-recorder event log into the per-round timeline
// and straggler ranking. Rings that wrapped are handled conservatively:
// each agent is only judged over the window its events cover.
func Analyze(recs []EventRecord) *Analysis {
	a := &Analysis{StalenessDist: make(map[int]int)}
	if len(recs) == 0 {
		return a
	}
	sorted := make([]EventRecord, len(recs))
	copy(sorted, recs)
	slices.SortFunc(sorted, func(x, y EventRecord) int {
		if x.Nanos != y.Nanos {
			if x.Nanos < y.Nanos {
				return -1
			}
			return 1
		}
		return strings.Compare(x.Agent, y.Agent)
	})

	rounds := make(map[int]*RoundSummary)
	touchRound := func(r int, nanos int64) *RoundSummary {
		rs, ok := rounds[r]
		if !ok {
			rs = &RoundSummary{Round: r, FirstNanos: nanos, LastNanos: nanos}
			rounds[r] = rs
		}
		if nanos < rs.FirstNanos {
			rs.FirstNanos = nanos
		}
		if nanos > rs.LastNanos {
			rs.LastNanos = nanos
		}
		return rs
	}

	tracks := make(map[string]*agentTrack)
	isAgent := func(name string) bool {
		return strings.HasPrefix(name, "flow/") || strings.HasPrefix(name, "node/")
	}
	// peerOf names the sender of a recv event: flows hear from nodes
	// (A = node id), nodes hear from flows (A = flow id).
	peerOf := func(rec EventRecord) string {
		if strings.HasPrefix(rec.Agent, "flow/") {
			return nodeName(model.NodeID(rec.A))
		}
		return flowName(model.FlowID(rec.A))
	}
	comps := newUnionFind()
	endNanos := sorted[len(sorted)-1].Nanos

	for _, rec := range sorted {
		if isAgent(rec.Agent) {
			tr, ok := tracks[rec.Agent]
			if !ok {
				tr = &agentTrack{firstNanos: rec.Nanos}
				tracks[rec.Agent] = tr
			}
			tr.lastNanos = rec.Nanos
		}
		switch parseEventType(rec.Ev) {
		case EvSend:
			rs := touchRound(rec.Round, rec.Nanos)
			rs.Sends++
			a.StalenessDist[int(rec.A)]++
		case EvRecv, EvAbsorb:
			// recv and absorb are mutually exclusive per frame; both
			// count as a received frame for the round.
			touchRound(rec.Round, rec.Nanos).Recvs++
			if isAgent(rec.Agent) {
				comps.union(rec.Agent, peerOf(rec))
			}
		case EvResend:
			rs := touchRound(rec.Round, rec.Nanos)
			rs.Resends++
			a.TotalResends++
			if tr := tracks[rec.Agent]; tr != nil {
				tr.chirps++
			}
		case EvRound:
			touchRound(rec.Round, rec.Nanos)
			if rec.Round > a.MaxRound {
				a.MaxRound = rec.Round
			}
			if tr := tracks[rec.Agent]; tr != nil {
				tr.advances = append(tr.advances, frontierStep{nanos: rec.Nanos, round: rec.Round})
			}
		case EvStall:
			a.Stalls++
		}
	}
	a.SpanNanos = endNanos - sorted[0].Nanos

	// Per-component frontiers: the running maximum of completed rounds
	// within each communicating component, as compact step functions (at
	// most MaxRound entries each).
	frontiers := make(map[string][]frontierStep)
	maxSeen := make(map[string]int)
	for _, rec := range sorted {
		if parseEventType(rec.Ev) != EvRound || !isAgent(rec.Agent) {
			continue
		}
		root := comps.find(rec.Agent)
		if rec.Round > maxSeen[root] {
			maxSeen[root] = rec.Round
			frontiers[root] = append(frontiers[root], frontierStep{nanos: rec.Nanos, round: rec.Round})
		}
	}

	for name, tr := range tracks {
		a.Agents = append(a.Agents, summarizeAgent(name, tr, frontiers[comps.find(name)], endNanos))
	}
	slices.SortFunc(a.Agents, func(x, y AgentSummary) int {
		if x.BehindNanos != y.BehindNanos {
			if x.BehindNanos > y.BehindNanos {
				return -1
			}
			return 1
		}
		if x.Chirps != y.Chirps {
			return y.Chirps - x.Chirps
		}
		return strings.Compare(x.Agent, y.Agent)
	})

	for _, rs := range rounds {
		a.Rounds = append(a.Rounds, *rs)
	}
	slices.SortFunc(a.Rounds, func(x, y RoundSummary) int { return x.Round - y.Round })
	return a
}

// summarizeAgent integrates one agent's lag behind its component frontier
// over its observed window. Before an agent's first recorded advance its
// completed round is taken as (first advance - 1): exact when the ring
// covers the whole run, conservative when it wrapped. An agent whose ring
// holds no advances at all cannot be judged and scores zero rather than
// being mistaken for a maximal straggler.
func summarizeAgent(name string, tr *agentTrack, frontier []frontierStep, endNanos int64) AgentSummary {
	s := AgentSummary{Agent: name, Chirps: tr.chirps}
	if len(tr.advances) == 0 {
		return s
	}
	s.FirstRound = tr.advances[0].round
	s.LastRound = tr.advances[len(tr.advances)-1].round

	completed := s.FirstRound - 1
	if completed < 0 {
		completed = 0
	}
	fi := 0 // next frontier step
	front := 0
	ai := 0
	t := tr.firstNanos
	// Catch the frontier up to the start of the agent's window.
	for fi < len(frontier) && frontier[fi].nanos <= t {
		front = frontier[fi].round
		fi++
	}
	for t < endNanos {
		// Next state change: a frontier step or this agent's advance.
		next := endNanos
		if fi < len(frontier) && frontier[fi].nanos < next {
			next = frontier[fi].nanos
		}
		if ai < len(tr.advances) && tr.advances[ai].nanos < next {
			next = tr.advances[ai].nanos
		}
		lag := front - completed
		if lag > s.MaxLag {
			s.MaxLag = lag
		}
		if lag > 1 {
			s.BehindNanos += int64(lag-1) * (next - t)
		}
		t = next
		for fi < len(frontier) && frontier[fi].nanos <= t {
			front = frontier[fi].round
			fi++
		}
		for ai < len(tr.advances) && tr.advances[ai].nanos <= t {
			completed = tr.advances[ai].round
			ai++
		}
	}
	return s
}
